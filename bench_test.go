// Benchmarks regenerating every table and figure of the paper (see
// DESIGN.md §4 for the experiment index) plus the ablations of DESIGN.md
// §7. Each benchmark iteration performs one full (reduced-scale)
// experiment; run the cmd/ CLIs for the paper-scale versions.
package cubefit_test

import (
	"fmt"
	"testing"

	"cubefit"

	"cubefit/internal/baseline"
	"cubefit/internal/cluster"
	"cubefit/internal/core"
	"cubefit/internal/costs"
	"cubefit/internal/headroom"
	"cubefit/internal/packing"
	"cubefit/internal/ratio"
	"cubefit/internal/rfi"
	"cubefit/internal/sim"
	"cubefit/internal/workload"
)

const (
	benchTenants = 5000
	benchSeed    = 20170605
)

func benchModel() workload.LoadModel { return workload.DefaultLoadModel() }

func benchTenantStream(b *testing.B, dist workload.Distribution) []packing.Tenant {
	b.Helper()
	src, err := workload.NewClientSource(benchModel(), dist, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	return workload.Take(src, benchTenants)
}

func uniform15(b *testing.B) workload.Distribution {
	b.Helper()
	u, err := workload.NewUniform(1, 15)
	if err != nil {
		b.Fatal(err)
	}
	return u
}

func zipf3(b *testing.B) workload.Distribution {
	b.Helper()
	z, err := workload.NewZipf(3, workload.MaxClientsPerServer)
	if err != nil {
		b.Fatal(err)
	}
	return z
}

// --- E1: Figure 1 (worked packing example) -------------------------------

func BenchmarkFigure1Example(b *testing.B) {
	loads := []float64{0.6, 0.3, 0.6, 0.78, 0.12, 0.36}
	for i := 0; i < b.N; i++ {
		for _, gamma := range []int{2, 3} {
			c, err := cubefit.New(cubefit.WithReplication(gamma), cubefit.WithClasses(5))
			if err != nil {
				b.Fatal(err)
			}
			for id, load := range loads {
				if err := c.Place(cubefit.Tenant{ID: cubefit.TenantID(id), Load: load}); err != nil {
					b.Fatal(err)
				}
			}
			if err := c.Validate(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- E4: Theorem 2 (competitive ratio upper bounds) -----------------------

func BenchmarkTheorem2Gamma2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bound, err := ratio.UpperBound(2, 200)
		if err != nil {
			b.Fatal(err)
		}
		if bound.Ratio < 1.5 || bound.Ratio > 1.7 {
			b.Fatalf("γ=2 bound %v drifted from the paper's 1.59", bound.Ratio)
		}
	}
}

func BenchmarkTheorem2Gamma3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bound, err := ratio.UpperBound(3, 200)
		if err != nil {
			b.Fatal(err)
		}
		if bound.Ratio < 1.55 || bound.Ratio > 1.75 {
			b.Fatalf("γ=3 bound %v drifted from the paper's 1.625", bound.Ratio)
		}
	}
}

// --- E5: Figure 5 (worst-case failure latency) ----------------------------

func benchFigure5(b *testing.B, factory sim.Factory, dist workload.Distribution) {
	model := benchModel()
	spec := sim.ClusterSpec{
		Servers:  20,
		Failures: []int{1, 2},
		Model:    model,
		Dist:     dist,
		Seed:     benchSeed,
		Cluster:  cluster.Config{SLA: 5, Warmup: 10, Measure: 30, Seed: benchSeed},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := sim.RunCluster(spec, factory)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 2 {
			b.Fatalf("%d points", len(points))
		}
	}
}

func BenchmarkFigure5CubeFitGamma2Uniform(b *testing.B) {
	model := benchModel()
	benchFigure5(b, sim.CubeFitFactory(core.Config{Gamma: 2, K: 5}, &model), uniform15(b))
}

func BenchmarkFigure5CubeFitGamma3Uniform(b *testing.B) {
	model := benchModel()
	benchFigure5(b, sim.CubeFitFactory(core.Config{Gamma: 3, K: 5}, &model), uniform15(b))
}

func BenchmarkFigure5RFIUniform(b *testing.B) {
	benchFigure5(b, sim.RFIFactory(rfi.Config{Gamma: 2}), uniform15(b))
}

func BenchmarkFigure5CubeFitGamma3Zipf(b *testing.B) {
	model := benchModel()
	benchFigure5(b, sim.CubeFitFactory(core.Config{Gamma: 3, K: 5}, &model), zipf3(b))
}

// --- E6: Figure 6 (server savings sweep) ----------------------------------

func benchFigure6(b *testing.B, dist workload.Distribution) {
	model := benchModel()
	spec := sim.ConsolidationSpec{
		Tenants: benchTenants,
		Runs:    1,
		Seed:    benchSeed,
		Model:   model,
		Dist:    dist,
	}
	cubeF := sim.CubeFitFactory(core.Config{Gamma: 2, K: 10}, &model)
	rfiF := sim.RFIFactory(rfi.Config{Gamma: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.RunConsolidation(spec, cubeF, rfiF)
		if err != nil {
			b.Fatal(err)
		}
		if res.A.Servers.Mean >= res.B.Servers.Mean {
			b.Fatalf("CubeFit did not beat RFI: %+v", res)
		}
	}
}

func BenchmarkFigure6Uniform15(b *testing.B) { benchFigure6(b, uniform15(b)) }

func BenchmarkFigure6Zipf3(b *testing.B) { benchFigure6(b, zipf3(b)) }

func BenchmarkFigure6Sweep(b *testing.B) {
	dists, err := sim.DefaultSweep()
	if err != nil {
		b.Fatal(err)
	}
	model := benchModel()
	cubeF := sim.CubeFitFactory(core.Config{Gamma: 2, K: 10}, &model)
	rfiF := sim.RFIFactory(rfi.Config{Gamma: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, dist := range dists {
			spec := sim.ConsolidationSpec{
				Tenants: 1000,
				Runs:    1,
				Seed:    benchSeed,
				Model:   model,
				Dist:    dist,
			}
			if _, err := sim.RunConsolidation(spec, cubeF, rfiF); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- E7: Table I (yearly dollar savings) ----------------------------------

func BenchmarkTable1(b *testing.B) {
	model := benchModel()
	cubeF := sim.CubeFitFactory(core.Config{Gamma: 2, K: 10}, &model)
	rfiF := sim.RFIFactory(rfi.Config{Gamma: 2})
	pricing := costs.DefaultModel()
	dists := []workload.Distribution{uniform15(b), zipf3(b)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, dist := range dists {
			spec := sim.ConsolidationSpec{
				Tenants: benchTenants,
				Runs:    1,
				Seed:    benchSeed,
				Model:   model,
				Dist:    dist,
			}
			res, err := sim.RunConsolidation(spec, cubeF, rfiF)
			if err != nil {
				b.Fatal(err)
			}
			row, err := sim.TableI(res, pricing)
			if err != nil {
				b.Fatal(err)
			}
			if row.YearlySavings <= 0 {
				b.Fatalf("no savings: %+v", row)
			}
		}
	}
}

// --- Ablations (DESIGN.md §7) ---------------------------------------------

// BenchmarkAblationFirstStage quantifies what the mature-bin Best Fit
// stage buys: servers used with and without it.
func BenchmarkAblationFirstStage(b *testing.B) {
	tenants := benchTenantStream(b, uniform15(b))
	for _, disabled := range []bool{false, true} {
		name := "on"
		if disabled {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cf, err := core.New(core.Config{Gamma: 2, K: 10, DisableFirstStage: disabled})
				if err != nil {
					b.Fatal(err)
				}
				if err := packing.PlaceAll(cf, tenants); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(cf.Placement().NumUsedServers()), "servers")
			}
		})
	}
}

// BenchmarkAblationTinyPolicy compares the paper's empirical class-(K−1)
// placement with the theoretical multi-replica construction on a
// tiny-heavy workload.
func BenchmarkAblationTinyPolicy(b *testing.B) {
	tenants := benchTenantStream(b, zipf3(b))
	for _, policy := range []core.TinyPolicy{core.TinyClassKMinusOne, core.TinyMultiReplica} {
		b.Run(policy.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cf, err := core.New(core.Config{Gamma: 2, K: 10, TinyPolicy: policy})
				if err != nil {
					b.Fatal(err)
				}
				if err := packing.PlaceAll(cf, tenants); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(cf.Placement().NumUsedServers()), "servers")
			}
		})
	}
}

// BenchmarkAblationClasses sweeps the number of classes K ("as the number
// of servers is increased, increasing the number of classes will yield
// better performance", §V-A).
func BenchmarkAblationClasses(b *testing.B) {
	tenants := benchTenantStream(b, uniform15(b))
	for _, k := range []int{3, 5, 10, 15} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cf, err := core.New(core.Config{Gamma: 2, K: k})
				if err != nil {
					b.Fatal(err)
				}
				if err := packing.PlaceAll(cf, tenants); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(cf.Placement().NumUsedServers()), "servers")
			}
		})
	}
}

// BenchmarkAblationMu sweeps RFI's interleaving parameter around the
// recommended 0.85.
func BenchmarkAblationMu(b *testing.B) {
	tenants := benchTenantStream(b, uniform15(b))
	for _, mu := range []float64{0.70, 0.85, 0.95} {
		b.Run(fmt.Sprintf("mu=%.2f", mu), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a, err := rfi.New(rfi.Config{Gamma: 2, Mu: mu})
				if err != nil {
					b.Fatal(err)
				}
				if err := packing.PlaceAll(a, tenants); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(a.Placement().NumUsedServers()), "servers")
			}
		})
	}
}

// BenchmarkAblationPriceOfRobustness compares the robust algorithms with
// the non-robust Best Fit floor.
func BenchmarkAblationPriceOfRobustness(b *testing.B) {
	tenants := benchTenantStream(b, uniform15(b))
	algs := []struct {
		name string
		make func() (packing.Algorithm, error)
	}{
		{name: "best-fit-no-reserve", make: func() (packing.Algorithm, error) {
			return baseline.New(baseline.BestFit, 2)
		}},
		{name: "cubefit", make: func() (packing.Algorithm, error) {
			return core.New(core.Config{Gamma: 2, K: 10})
		}},
		{name: "rfi", make: func() (packing.Algorithm, error) {
			return rfi.New(rfi.Config{Gamma: 2})
		}},
	}
	for _, a := range algs {
		b.Run(a.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				alg, err := a.make()
				if err != nil {
					b.Fatal(err)
				}
				if err := packing.PlaceAll(alg, tenants); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(alg.Placement().NumUsedServers()), "servers")
			}
		})
	}
}

// --- Micro-benchmarks: per-tenant placement cost ---------------------------

func BenchmarkPlaceCubeFit(b *testing.B) {
	model := benchModel()
	src, err := workload.NewClientSource(model, uniform15(b), benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	cf, err := core.New(core.Config{Gamma: 2, K: 10, PruneSlack: model.Load(1) / 2 * 0.99})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cf.Place(src.Next()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlaceRFI(b *testing.B) {
	src, err := workload.NewClientSource(benchModel(), uniform15(b), benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	a, err := rfi.New(rfi.Config{Gamma: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Place(src.Next()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Robustness headroom: incremental audit vs exhaustive rescan -----------

// headroomBenchTenants sizes the audited placement; the PR's acceptance
// bar is a ≥10× ns/op advantage for the incremental auditor at this scale.
const headroomBenchTenants = 1000

// benchHeadroomState builds a 1k-tenant CubeFit placement with the
// incremental auditor attached and settled.
func benchHeadroomState(b *testing.B) (*core.CubeFit, *headroom.Auditor) {
	b.Helper()
	src, err := workload.NewClientSource(benchModel(), uniform15(b), benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	cf, err := core.New(core.Config{Gamma: 2, K: 10})
	if err != nil {
		b.Fatal(err)
	}
	a := headroom.New(cf.Placement(), 0)
	cf.SetRecorder(a)
	if err := packing.PlaceAll(cf, workload.Take(src, headroomBenchTenants)); err != nil {
		b.Fatal(err)
	}
	a.Report() // settle the dirty queue so iterations start clean
	return cf, a
}

// BenchmarkHeadroomIncremental measures one audit refresh after a
// tenant-shaped mutation: mark the tenant's hosts dirty, recompute only
// those entries, and read the minimum slack.
func BenchmarkHeadroomIncremental(b *testing.B) {
	cf, a := benchHeadroomState(b)
	p := cf.Placement()
	hosts := make([][]int, 0, p.NumTenants())
	for _, t := range p.Tenants() {
		hs := make([]int, 0, p.Gamma())
		for _, h := range p.TenantHosts(t.ID) {
			if h >= 0 {
				hs = append(hs, h)
			}
		}
		if len(hs) > 0 {
			hosts = append(hosts, hs)
		}
	}
	if len(hosts) == 0 {
		b.Fatal("no placed tenants")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.MarkDirty(hosts[i%len(hosts)]...); err != nil {
			b.Fatal(err)
		}
		if _, ok := a.Min(); !ok {
			b.Fatal("no audited servers")
		}
	}
}

// BenchmarkHeadroomExhaustive is the full-rescan reference on the same
// placement: every server's top-(γ−1) shared sum recomputed per iteration.
func BenchmarkHeadroomExhaustive(b *testing.B) {
	cf, _ := benchHeadroomState(b)
	p := cf.Placement()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := headroom.Exhaustive(p, 0)
		if rep.MinServer < 0 {
			b.Fatal("no audited servers")
		}
	}
}

func BenchmarkWorstCasePlanning(b *testing.B) {
	model := benchModel()
	src, err := workload.NewClientSource(model, uniform15(b), benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	factory := sim.CubeFitFactory(core.Config{Gamma: 2, K: 5}, &model)
	alg, _, err := sim.FillToCapacity(factory, src, 30)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cubefit.WorstCaseFailures(alg.Placement(), 2); err != nil {
			b.Fatal(err)
		}
	}
}
