// Command cubefit-ratio reproduces the paper's Theorem 2: the worst-case
// competitive ratio upper bound of CubeFit, computed by solving the
// weighting integer program exactly. It optionally reports empirical
// ratios of CubeFit and the baselines against a lower bound on OPT.
//
// Usage:
//
//	cubefit-ratio [-kmax 200] [-empirical] [-tenants 20000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cubefit/internal/baseline"
	"cubefit/internal/core"
	"cubefit/internal/packing"
	"cubefit/internal/ratio"
	"cubefit/internal/report"
	"cubefit/internal/rfi"
	"cubefit/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cubefit-ratio:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cubefit-ratio", flag.ContinueOnError)
	var (
		kmax      = fs.Int("kmax", 200, "largest class count to evaluate")
		empirical = fs.Bool("empirical", false, "also measure empirical ratios on random loads")
		tenants   = fs.Int("tenants", 20000, "tenants for the empirical measurement")
		seed      = fs.Uint64("seed", 1, "random seed for the empirical measurement")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmt.Fprintln(out, "Theorem 2: competitive-ratio upper bounds from the weighting program")
	fmt.Fprintln(out, "(the bound is only tight for large K, where the tiny-class weight density")
	fmt.Fprintln(out, " (αK+1)/(αK−γ+1) approaches 1; small-K values are loose)")
	tb := report.NewTable("γ", "K", "Upper bound")
	for _, gamma := range []int{2, 3} {
		for _, k := range []int{50, 100, 150, *kmax} {
			if k > *kmax {
				continue
			}
			b, err := ratio.UpperBound(gamma, k)
			if err != nil {
				return err
			}
			tb.AddRow(fmt.Sprintf("%d", gamma), fmt.Sprintf("%d", k), fmt.Sprintf("%.4f", b.Ratio))
		}
	}
	if err := tb.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out, "\nPaper anchors: the bounds approach 1.59 (γ=2) and 1.625 (γ=3) for large K.")

	if !*empirical {
		return nil
	}
	fmt.Fprintln(out, "\nEmpirical servers-used / lower-bound on uniform(0,1] loads:")
	src, err := workload.NewLoadSource(1, *seed)
	if err != nil {
		return err
	}
	ts := workload.Take(src, *tenants)
	algs := []struct {
		name string
		make func() (packing.Algorithm, error)
	}{
		{name: "cubefit γ=2 k=10", make: func() (packing.Algorithm, error) {
			return core.New(core.Config{Gamma: 2, K: 10})
		}},
		{name: "cubefit γ=3 k=10", make: func() (packing.Algorithm, error) {
			return core.New(core.Config{Gamma: 3, K: 10})
		}},
		{name: "rfi γ=2", make: func() (packing.Algorithm, error) {
			return rfi.New(rfi.Config{Gamma: 2})
		}},
		{name: "best-fit γ=2 (no reserve)", make: func() (packing.Algorithm, error) {
			return baseline.New(baseline.BestFit, 2)
		}},
	}
	et := report.NewTable("Algorithm", "Servers", "Lower bound", "Ratio")
	lb := ratio.LowerBoundServers(ts, 2)
	for _, a := range algs {
		alg, err := a.make()
		if err != nil {
			return err
		}
		r, err := ratio.Empirical(alg, ts)
		if err != nil {
			return err
		}
		et.AddRow(a.name,
			fmt.Sprintf("%d", alg.Placement().NumUsedServers()),
			fmt.Sprintf("%d", lb),
			fmt.Sprintf("%.3f", r))
	}
	return et.Render(out)
}
