package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestBoundsOnly(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kmax", "100"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "Theorem 2") {
		t.Fatalf("missing header:\n%s", text)
	}
	if !strings.Contains(text, "1.59") && !strings.Contains(text, "1.60") {
		t.Fatalf("γ=2 bound not near 1.59/1.60:\n%s", text)
	}
	if strings.Contains(text, "Empirical") {
		t.Fatalf("empirical table printed without -empirical:\n%s", text)
	}
}

func TestEmpirical(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kmax", "50", "-empirical", "-tenants", "2000"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"Empirical", "cubefit γ=2 k=10", "rfi γ=2", "best-fit γ=2"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kmax", "x"}, &out); err == nil {
		t.Fatal("invalid flag accepted")
	}
}
