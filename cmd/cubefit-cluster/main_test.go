package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestQuickRun(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-quick", "-failures", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"Figure 5",
		"cubefit(γ=2,k=5)",
		"cubefit(γ=3,k=5)",
		"rfi(γ=2,μ=0.85)",
		"uniform(1..15)",
		"zipf(s=3, 1..52)",
		"Worst P99",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
	// 2 dists × 3 algorithms × 2 failure levels (0 and 1) = 12 data rows.
	rows := 0
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, " s ") && (strings.Contains(line, "meets") || strings.Contains(line, "VIOLATES")) {
			rows++
		}
	}
	if rows != 12 {
		t.Fatalf("found %d data rows, want 12:\n%s", rows, text)
	}
}

func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-servers", "abc"}, &out); err == nil {
		t.Fatal("invalid flag accepted")
	}
}

func TestInvalidFailureCount(t *testing.T) {
	var out bytes.Buffer
	// More failures than servers must surface as an error. (-quick is not
	// used because it overrides -servers.)
	if err := run([]string{"-servers", "3", "-failures", "5", "-warmup", "1", "-measure", "2"}, &out); err == nil {
		t.Fatal("failures > servers accepted")
	}
}

// TestWorkersParity asserts the acceptance requirement that the parallel
// runner reproduces the serial report byte-for-byte at a fixed seed.
func TestWorkersParity(t *testing.T) {
	base := []string{"-quick", "-failures", "1", "-seed", "3"}
	var serial bytes.Buffer
	if err := run(base, &serial); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"2", "6"} {
		var parallel bytes.Buffer
		if err := run(append([]string{"-workers", w}, base...), &parallel); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(parallel.Bytes(), serial.Bytes()) {
			t.Fatalf("-workers %s output differs from serial:\n%s\nvs\n%s", w, parallel.String(), serial.String())
		}
	}
}
