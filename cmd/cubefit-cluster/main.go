// Command cubefit-cluster regenerates the paper's Figure 5: 99th-percentile
// latency of CubeFit (γ=2 and γ=3, K=5) and RFI (γ=2, μ=0.85) under
// worst-case server failures, for the uniform(1..15) and zipf(3) tenant
// distributions, against the 5-second SLA on a 69-server cluster.
//
// Usage:
//
//	cubefit-cluster [-servers 69] [-failures 2] [-warmup 60] [-measure 120]
//	                [-sla 5] [-seed 1] [-quick] [-workers N]
//
// -workers N simulates the six (distribution × algorithm) series on N
// goroutines. Each series is fully self-contained (own tenant stream, own
// cluster), so the report is bit-identical to -workers 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cubefit/internal/cluster"
	"cubefit/internal/core"
	"cubefit/internal/report"
	"cubefit/internal/rfi"
	"cubefit/internal/sim"
	"cubefit/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cubefit-cluster:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cubefit-cluster", flag.ContinueOnError)
	var (
		servers   = fs.Int("servers", 69, "data-store servers in the cluster")
		maxFails  = fs.Int("failures", 2, "highest simultaneous failure count to measure")
		warmup    = fs.Float64("warmup", 60, "simulated warm-up seconds (paper: 300)")
		measure   = fs.Float64("measure", 120, "simulated measurement seconds (paper: 300)")
		sla       = fs.Float64("sla", 5, "99th-percentile SLA in seconds")
		seed      = fs.Uint64("seed", 1, "master random seed")
		quick     = fs.Bool("quick", false, "reduced scale (20 servers, short windows)")
		transient = fs.Bool("transient", false, "kill servers mid-run (reconnect transient) instead of pre-failed steady state")
		workers   = fs.Int("workers", 1, "concurrent series (results identical for any value)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *quick {
		*servers, *warmup, *measure = 20, 15, 45
	}

	model := workload.DefaultLoadModel()
	configs := []sim.Factory{
		sim.CubeFitFactory(core.Config{Gamma: 2, K: 5}, &model),
		sim.CubeFitFactory(core.Config{Gamma: 3, K: 5}, &model),
		sim.RFIFactory(rfi.Config{Gamma: 2}),
	}
	failures := make([]int, 0, *maxFails+1)
	for f := 0; f <= *maxFails; f++ {
		failures = append(failures, f)
	}

	dists := []workload.Distribution{}
	u, err := workload.NewUniform(1, 15)
	if err != nil {
		return err
	}
	z, err := workload.NewZipf(3, workload.MaxClientsPerServer)
	if err != nil {
		return err
	}
	dists = append(dists, u, z)

	fmt.Fprintf(out, "Figure 5: worst-case failure latency, %d servers, SLA %.1f s\n\n", *servers, *sla)
	tb := report.NewTable("Distribution", "Algorithm", "Failures", "Worst P99", "SLA", "Client load", "Lost")
	// Each (distribution × algorithm) series is an independent experiment;
	// run them on the worker pool and render in series order, so the report
	// is identical for every -workers value.
	type series struct {
		dist workload.Distribution
		f    sim.Factory
	}
	var all []series
	for _, dist := range dists {
		for _, f := range configs {
			all = append(all, series{dist: dist, f: f})
		}
	}
	results, err := sim.Trials(*workers, len(all), func(i int) ([]sim.ClusterPoint, error) {
		spec := sim.ClusterSpec{
			Servers:   *servers,
			Failures:  failures,
			Model:     model,
			Dist:      all[i].dist,
			Seed:      *seed,
			Cluster:   cluster.Config{SLA: *sla, Warmup: *warmup, Measure: *measure, Seed: *seed},
			Transient: *transient,
		}
		return sim.RunCluster(spec, all[i].f)
	})
	if err != nil {
		return err
	}
	for i, points := range results {
		for _, pt := range points {
			verdict := "meets"
			if pt.Latency.ViolatesSLA {
				verdict = "VIOLATES"
			}
			tb.AddRow(all[i].dist.Name(), pt.Algorithm,
				fmt.Sprintf("%d", pt.Failures),
				report.Seconds(pt.Latency.WorstServerP99),
				verdict,
				fmt.Sprintf("%.1f", pt.Plan.MaxClientLoad),
				fmt.Sprintf("%d", pt.Latency.LostClients))
		}
	}
	if err := tb.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out, "\nPaper anchors: with 1 failure no CubeFit config violates the SLA;")
	fmt.Fprintln(out, "with 2 failures only CubeFit γ=3 stays within it (4.27 s uniform, 4.19 s zipfian).")
	return nil
}
