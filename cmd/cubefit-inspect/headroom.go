package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cubefit/internal/headroom"
	"cubefit/internal/obs"
	"cubefit/internal/report"
)

// runHeadroom replays a decision event log through the incremental
// robustness headroom auditor and reports the safety-margin time series:
// one sample per closed admission or departure, the trough (the tightest
// the placement ever got), and the final per-server audit with each worst
// failure set attributed to its contributing tenants.
func runHeadroom(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cubefit-inspect headroom", flag.ContinueOnError)
	var (
		eventsPath = fs.String("events", "", "decision event log (JSONL, required)")
		gamma      = fs.Int("gamma", 0, "replication factor of the log (0 infers it from replica indices)")
		redline    = fs.Float64("redline", headroom.DefaultRedLine, "slack threshold for the below-red-line count")
		top        = fs.Int("top", 5, "show the N servers with the least final slack")
		csv        = fs.Bool("csv", false, "emit the full time series as CSV instead of the summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *eventsPath == "" {
		return fmt.Errorf("headroom: -events is required")
	}
	f, err := os.Open(*eventsPath)
	if err != nil {
		return err
	}
	//cubefit:vet-allow failclosed -- event log opened read-only; closing it cannot lose data
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		return fmt.Errorf("reading %s: %w", *eventsPath, err)
	}

	var series []headroom.Point
	p, a, err := headroom.Replay(events, *gamma, *redline, func(pt headroom.Point) {
		series = append(series, pt)
	})
	if err != nil {
		return err
	}

	if *csv {
		fmt.Fprintln(out, "seq,kind,tenant,tenants,servers,min_slack,min_server,below_redline,overloaded")
		for _, pt := range series {
			fmt.Fprintf(out, "%d,%s,%d,%d,%d,%.6f,%d,%d,%d\n",
				pt.Seq, pt.Kind, pt.Tenant, pt.Tenants, pt.Servers,
				pt.MinSlack, pt.MinServer, pt.BelowRedLine, pt.Overloaded)
		}
		return nil
	}

	rep := a.Report()
	fmt.Fprintf(out, "%d events replayed (γ=%d), %d samples\n", len(events), rep.Gamma, len(series))
	fmt.Fprintf(out, "final: %d tenants on %d servers, min slack %.4f (server %d), p50 %.4f\n",
		p.NumTenants(), p.NumServers(), rep.MinSlack, rep.MinServer, rep.P50Slack)
	fmt.Fprintf(out, "red line %.3f: %d servers below, %d overloaded under worst-case failover\n",
		rep.RedLine, rep.BelowRedLine, rep.Overloaded)

	if len(series) > 0 {
		trough := series[0]
		for _, pt := range series[1:] {
			if pt.MinSlack < trough.MinSlack {
				trough = pt
			}
		}
		fmt.Fprintf(out, "trough: min slack %.4f on server %d (%s of tenant %d, %d tenants placed)\n",
			trough.MinSlack, trough.MinServer, trough.Kind, trough.Tenant, trough.Tenants)
	}

	worst := a.Worst(*top)
	if len(worst) == 0 {
		return nil
	}
	fmt.Fprintf(out, "\ntightest %d servers:\n", len(worst))
	tb := report.NewTable("Server", "Level", "Reserve", "Slack", "Worst failure set", "Contributing tenants")
	for _, e := range worst {
		contribs, err := headroom.Contributors(p, e.Server, e.WorstSet)
		if err != nil {
			return err
		}
		tenants := make([]int, 0, 8)
		for _, c := range contribs {
			for _, ts := range c.Tenants {
				tenants = append(tenants, ts.Tenant)
			}
		}
		tb.AddRow(
			fmt.Sprintf("%d", e.Server),
			fmt.Sprintf("%.3f", e.Level),
			fmt.Sprintf("%.3f", e.Reserve),
			fmt.Sprintf("%.3f", e.Slack),
			fmt.Sprintf("%v", e.WorstSet),
			fmt.Sprintf("%v", tenants),
		)
	}
	return tb.Render(out)
}
