package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cubefit/internal/core"
	"cubefit/internal/packing"
	"cubefit/internal/trace"
	"cubefit/internal/workload"
)

func snapshotFile(t *testing.T, gamma int) string {
	t.Helper()
	cf, err := core.New(core.Config{Gamma: gamma, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := workload.NewUniform(1, 15)
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewClientSource(workload.DefaultLoadModel(), dist, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := packing.PlaceAll(cf, workload.Take(src, 100)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "placement.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.Write(f, cf.Placement()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestInspectFromFile(t *testing.T) {
	path := snapshotFile(t, 2)
	var out bytes.Buffer
	if err := run([]string{path}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"γ=2, 100 tenants",
		"robustness: OK",
		"top 5 servers by load",
		"worst-case failure drills",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

func TestInspectFromStdin(t *testing.T) {
	path := snapshotFile(t, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(nil, bytes.NewReader(data), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "γ=3") {
		t.Fatalf("stdin inspect failed:\n%s", out.String())
	}
	// γ=3 defaults to drills for 1 and 2 failures.
	if !strings.Contains(out.String(), "tolerates any 2 simultaneous failures") {
		t.Fatalf("γ=3 drill summary missing:\n%s", out.String())
	}
}

func TestInspectFlagsAndErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-top", "bad"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("invalid flag accepted")
	}
	if err := run([]string{"/nonexistent/path.json"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run(nil, strings.NewReader("{garbage"), &out); err == nil {
		t.Fatal("garbage JSON accepted")
	}
}

func TestInspectDetectsViolation(t *testing.T) {
	// Hand-build a non-robust placement: two unit-load tenants fully
	// shared across two servers.
	p, err := packing.NewPlacement(2)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := p.OpenServer(), p.OpenServer()
	for id := packing.TenantID(1); id <= 2; id++ {
		tn := packing.Tenant{ID: id, Load: 1}
		if err := p.AddTenant(tn); err != nil {
			t.Fatal(err)
		}
		reps := p.Replicas(tn)
		if err := p.Place(s1, reps[0]); err != nil {
			t.Fatal(err)
		}
		if err := p.Place(s2, reps[1]); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(nil, &buf, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ROBUSTNESS: VIOLATED") {
		t.Fatalf("violation not reported:\n%s", out.String())
	}
}
