package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cubefit/internal/clock"
	"cubefit/internal/metrics"
	"cubefit/internal/obs"
	"cubefit/internal/telemetry"
)

// writeHealthLog drives a real monitor through a WAL incident against a
// fake clock and returns the path of the JSONL log it streamed: two
// healthy ticks, a sticky-WAL critical tick, and a hysteresis recovery.
func writeHealthLog(t *testing.T) string {
	t.Helper()
	reg := metrics.NewRegistry()
	wal := reg.NewGauge(telemetry.SeriesWALStickyError, "sticky wal error")
	var buf bytes.Buffer
	sink := obs.NewHealthJSONL(&buf)
	cfg := telemetry.Config{
		Interval:     time.Second,
		RecoverTicks: 2,
		WAL:          telemetry.WALConfig{Series: telemetry.SeriesWALStickyError},
	}
	fake := clock.NewFake(time.Unix(0, 0))
	m := telemetry.New(reg, cfg, fake, telemetry.WithSink(sink))
	tick := func() { fake.Advance(time.Second); m.Tick() }
	tick()
	tick()
	wal.Set(1)
	tick() // critical
	wal.Set(0)
	tick()
	tick() // healthy again after RecoverTicks clean ticks
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "health.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestHealthReplayTable(t *testing.T) {
	path := writeHealthLog(t)
	var out bytes.Buffer
	if err := run([]string{"health", "-log", path}, nil, &out); err != nil {
		t.Fatalf("health replay: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"5 ticks",
		"final state healthy",
		"healthy → critical",
		"critical → healthy",
		"wal-sticky-error",
		"replay parity: OK",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestHealthReplayJSON(t *testing.T) {
	path := writeHealthLog(t)
	var out bytes.Buffer
	if err := run([]string{"health", "-log", path, "-json"}, nil, &out); err != nil {
		t.Fatalf("health replay: %v\n%s", err, out.String())
	}
	var res telemetry.ReplayResult
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Ticks != 5 || res.Final != telemetry.Healthy || len(res.Transitions) != 2 {
		t.Fatalf("replay result: %+v", res)
	}
	if !res.ParityOK() {
		t.Fatal("parity failed on a clean log")
	}
}

// TestHealthReplayParityMismatch: a log whose recorded transitions do not
// match the reconstruction (here: a spurious appended transition record)
// must fail loudly, not report a clean replay.
func TestHealthReplayParityMismatch(t *testing.T) {
	path := writeHealthLog(t)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"transition","tNs":999,"from":"healthy","to":"critical","rules":["bogus"]}` + "\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = run([]string{"health", "-log", path}, nil, &out)
	if err == nil || !strings.Contains(err.Error(), "diverges") {
		t.Fatalf("tampered log replayed cleanly: err=%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "MISMATCH") {
		t.Fatalf("output does not flag the mismatch:\n%s", out.String())
	}
}

func TestHealthErrors(t *testing.T) {
	if err := run([]string{"health"}, nil, new(bytes.Buffer)); err == nil {
		t.Fatal("missing -log accepted")
	}
	if err := run([]string{"health", "-log", filepath.Join(t.TempDir(), "absent.jsonl")}, nil, new(bytes.Buffer)); err == nil {
		t.Fatal("absent log accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"health", "-log", empty}, nil, new(bytes.Buffer)); err == nil {
		t.Fatal("log without a config record accepted")
	}
}
