package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cubefit/internal/obs"
)

// writeSpanLog builds a synthetic span log: 6 spans across 2 group
// commits (sizes 4 and 2) with exactly known stage durations, plus one
// rejected span that never reached a commit.
func writeSpanLog(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	sink := obs.NewSpanJSONL(&buf)
	mk := func(tenant int, base int64, commit uint64, group int) obs.Span {
		return obs.Span{
			Tenant: tenant, Status: 201, Commit: commit, Group: group,
			EnqueueNs:     base,
			DequeueNs:     base + 1000, // queue 1µs
			PlaceStartNs:  base + 1200,
			PlaceEndNs:    base + 2000, // place 1µs (engine 800ns)
			CommitStartNs: base + 2500, // wal 500ns
			CommitEndNs:   base + 4500, // fsync 2µs
			AckNs:         base + 5000, // ack 500ns
		}
	}
	for i := 0; i < 4; i++ {
		sink.RecordSpan(mk(i, int64(10000*i), 1, 4))
	}
	for i := 4; i < 6; i++ {
		sink.RecordSpan(mk(i, int64(10000*i), 2, 2))
	}
	// A 409: dequeued and acked without placement or commit.
	sink.RecordSpan(obs.Span{Tenant: 99, Status: 409, EnqueueNs: 90000, DequeueNs: 91000, AckNs: 91500})
	if sink.Err() != nil {
		t.Fatal(sink.Err())
	}
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLatencyReportJSON(t *testing.T) {
	path := writeSpanLog(t)
	var out bytes.Buffer
	if err := run([]string{"latency", "-spans", path, "-json"}, nil, &out); err != nil {
		t.Fatal(err)
	}
	var rep latencyReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Spans != 7 {
		t.Fatalf("spans %d, want 7", rep.Spans)
	}
	if rep.MaxResidualNs != 0 {
		t.Fatalf("telescoping residual %d, want 0", rep.MaxResidualNs)
	}
	if rep.Statuses[201] != 6 || rep.Statuses[409] != 1 {
		t.Fatalf("statuses %v", rep.Statuses)
	}
	if rep.Commits != 2 {
		t.Fatalf("commits %d, want 2", rep.Commits)
	}
	// The committed spans share exact stage durations; the P50 over 7
	// spans (6 committed + 1 cheap reject) still lands on the common
	// values.
	for stage, wantP50 := range map[string]float64{
		"queue": 1000, "place": 1000, "wal": 500, "fsync": 2000, "ack": 500, "total": 5000,
	} {
		if got := rep.Stages[stage].P50Ns; got != wantP50 {
			t.Errorf("stage %s P50 %v, want %v", stage, got, wantP50)
		}
	}
	// Amortization: the size-4 commit costs 2µs/4 = 500ns per admission,
	// the size-2 commit 1µs.
	if len(rep.Amortization) != 2 {
		t.Fatalf("amortization buckets %+v", rep.Amortization)
	}
	b4 := rep.Amortization[1]
	if b4.GroupMin != 4 || b4.GroupMax != 7 || b4.Commits != 1 || b4.Admissions != 4 || b4.FsyncPerAdmissionNs != 500 {
		t.Fatalf("size-4 bucket %+v", b4)
	}
	b2 := rep.Amortization[0]
	if b2.GroupMin != 2 || b2.GroupMax != 3 || b2.FsyncPerAdmissionNs != 1000 {
		t.Fatalf("size-2 bucket %+v", b2)
	}
}

func TestLatencyReportTable(t *testing.T) {
	path := writeSpanLog(t)
	var out bytes.Buffer
	if err := run([]string{"latency", "-spans", path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"7 spans (6× 201, 1× 409)",
		"stage latency",
		"fsync",
		"reconciliation: stage sums match end-to-end totals exactly",
		"fsync amortization across 2 group commits",
		"Fsync/admission",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q:\n%s", want, text)
		}
	}
}

func TestLatencyErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"latency"}, nil, &out); err == nil {
		t.Fatal("missing -spans should fail")
	}
	if err := run([]string{"latency", "-spans", "/nonexistent/spans.jsonl"}, nil, &out); err == nil {
		t.Fatal("unreadable span log should fail")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"latency", "-spans", empty}, nil, &out); err == nil {
		t.Fatal("empty span log should fail")
	}
}
