package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"cubefit/internal/obs"
	"cubefit/internal/report"
	"cubefit/internal/stats"
)

// runLatency replays a span log (the JSONL written by the controller's
// span sink; see `cubefit-server -spans` or `cubefit-load -spans`) and
// decomposes end-to-end admission latency into pipeline stages: per-stage
// P50/P99/mean/max, the share of total time each stage accounts for, the
// telescoping reconciliation check, and fsync amortization versus
// group-commit size.
func runLatency(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cubefit-inspect latency", flag.ContinueOnError)
	var (
		spansPath = fs.String("spans", "", "admission span log (JSONL, required)")
		jsonOut   = fs.Bool("json", false, "emit the report as JSON instead of tables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spansPath == "" {
		return fmt.Errorf("latency: -spans is required")
	}
	f, err := os.Open(*spansPath)
	if err != nil {
		return err
	}
	//cubefit:vet-allow failclosed -- span log opened read-only; closing it cannot lose data
	defer f.Close()
	spans, err := obs.ReadSpanJSONL(f)
	if err != nil {
		return fmt.Errorf("reading %s: %w", *spansPath, err)
	}
	if len(spans) == 0 {
		return fmt.Errorf("latency: %s holds no spans", *spansPath)
	}
	rep := buildLatencyReport(spans)
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	return renderLatencyReport(out, rep)
}

// stageStats is one stage's latency distribution over the span log. The
// reported stage set is obs.StageExtractors, shared with /debug/pipeline
// and the telemetry sampler.
type stageStats struct {
	P50Ns  float64 `json:"p50Ns"`
	P99Ns  float64 `json:"p99Ns"`
	MeanNs float64 `json:"meanNs"`
	MaxNs  float64 `json:"maxNs"`
	SumNs  float64 `json:"sumNs"`
	// SharePct is this stage's share of the summed end-to-end time (only
	// the five canonical stages partition it; overlays overlap).
	SharePct float64 `json:"sharePct"`
}

// amortBucket aggregates the commits whose group size falls in
// [GroupMin, GroupMax]: batching efficiency is the per-admission fsync
// cost falling as the group grows.
type amortBucket struct {
	GroupMin            int     `json:"groupMin"`
	GroupMax            int     `json:"groupMax"`
	Commits             int     `json:"commits"`
	Admissions          int     `json:"admissions"`
	MeanFsyncNs         float64 `json:"meanFsyncNs"`
	FsyncPerAdmissionNs float64 `json:"fsyncPerAdmissionNs"`
}

// latencyReport is the machine-readable form of the latency breakdown.
type latencyReport struct {
	Spans    int                   `json:"spans"`
	Statuses map[int]int           `json:"statuses"`
	Stages   map[string]stageStats `json:"stages"`
	// MaxResidualNs is the largest |total − Σstages| across spans; the
	// telescoping contract makes it 0 for every normalized span.
	MaxResidualNs int64         `json:"maxResidualNs"`
	Commits       int           `json:"commits"`
	Amortization  []amortBucket `json:"fsyncAmortization"`
}

func buildLatencyReport(spans []obs.Span) latencyReport {
	rep := latencyReport{
		Spans:    len(spans),
		Statuses: make(map[int]int),
		Stages:   make(map[string]stageStats, len(obs.StageExtractors)),
	}
	var totalSum float64
	vals := make([]float64, len(spans))
	for _, st := range obs.StageExtractors {
		var s stageStats
		for i := range spans {
			v := float64(st.Ns(&spans[i]))
			vals[i] = v
			s.SumNs += v
			if v > s.MaxNs {
				s.MaxNs = v
			}
		}
		s.P50Ns, _ = stats.PercentileInPlace(vals, 50)
		s.P99Ns, _ = stats.P99InPlace(vals)
		s.MeanNs = s.SumNs / float64(len(spans))
		if st.Name == "total" {
			totalSum = s.SumNs
		}
		rep.Stages[st.Name] = s
	}
	if totalSum > 0 {
		for name, s := range rep.Stages {
			s.SharePct = 100 * s.SumNs / totalSum
			rep.Stages[name] = s
		}
	}
	// Reconciliation: the five canonical stages must telescope to the
	// total on every span.
	for i := range spans {
		s := &spans[i]
		sum := s.QueueNs() + s.PlaceNs() + s.WalNs() + s.FsyncNs() + s.AckLatencyNs()
		residual := s.TotalNs() - sum
		if residual < 0 {
			residual = -residual
		}
		if residual > rep.MaxResidualNs {
			rep.MaxResidualNs = residual
		}
		rep.Statuses[s.Status]++
	}
	rep.Commits, rep.Amortization = amortize(spans)
	return rep
}

// amortize deduplicates group commits by id and buckets them by group
// size (powers of two), reporting the per-admission fsync cost per bucket.
func amortize(spans []obs.Span) (commits int, buckets []amortBucket) {
	type commitInfo struct {
		group   int
		fsyncNs int64
	}
	seen := make(map[uint64]commitInfo)
	for i := range spans {
		s := &spans[i]
		if s.Commit == 0 {
			continue
		}
		seen[s.Commit] = commitInfo{group: s.Group, fsyncNs: s.FsyncNs()}
	}
	if len(seen) == 0 {
		return 0, nil
	}
	// Bucket by group size: [1,1], [2,3], [4,7], ...
	agg := make(map[int]*amortBucket)
	for _, ci := range seen {
		lo := 1
		for lo*2 <= ci.group {
			lo *= 2
		}
		hi := lo*2 - 1
		b := agg[lo]
		if b == nil {
			b = &amortBucket{GroupMin: lo, GroupMax: hi}
			agg[lo] = b
		}
		b.Commits++
		b.Admissions += ci.group
		b.MeanFsyncNs += float64(ci.fsyncNs)
	}
	keys := make([]int, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	buckets = make([]amortBucket, 0, len(keys))
	for _, k := range keys {
		b := agg[k]
		sumFsync := b.MeanFsyncNs
		b.MeanFsyncNs = sumFsync / float64(b.Commits)
		if b.Admissions > 0 {
			b.FsyncPerAdmissionNs = sumFsync / float64(b.Admissions)
		}
		buckets = append(buckets, *b)
	}
	return len(seen), buckets
}

// formatNs renders a nanosecond quantity at a human scale.
func formatNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

func renderLatencyReport(out io.Writer, rep latencyReport) error {
	fmt.Fprintf(out, "%d spans", rep.Spans)
	codes := make([]int, 0, len(rep.Statuses))
	for c := range rep.Statuses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	sep := " ("
	for _, c := range codes {
		fmt.Fprintf(out, "%s%d× %d", sep, rep.Statuses[c], c)
		sep = ", "
	}
	fmt.Fprintln(out, ")")

	fmt.Fprintln(out, "\nstage latency (canonical stages sum to total; engine ⊂ place, commit = wal+fsync):")
	tb := report.NewTable("Stage", "P50", "P99", "Mean", "Max", "Share")
	for _, st := range obs.StageExtractors {
		s := rep.Stages[st.Name]
		name := st.Name
		if !st.Canonical && st.Name != "total" {
			name = "  " + name
		}
		tb.AddRow(name,
			formatNs(s.P50Ns), formatNs(s.P99Ns), formatNs(s.MeanNs), formatNs(s.MaxNs),
			fmt.Sprintf("%.1f%%", s.SharePct))
	}
	if err := tb.Render(out); err != nil {
		return err
	}
	if rep.MaxResidualNs == 0 {
		fmt.Fprintln(out, "reconciliation: stage sums match end-to-end totals exactly (max residual 0ns)")
	} else {
		fmt.Fprintf(out, "reconciliation: WARNING — max |total − Σstages| = %s\n",
			formatNs(float64(rep.MaxResidualNs)))
	}

	if rep.Commits > 0 {
		fmt.Fprintf(out, "\nfsync amortization across %d group commits:\n", rep.Commits)
		ab := report.NewTable("Group size", "Commits", "Admissions", "Mean fsync", "Fsync/admission")
		for _, b := range rep.Amortization {
			size := fmt.Sprintf("%d", b.GroupMin)
			if b.GroupMax > b.GroupMin {
				size = fmt.Sprintf("%d–%d", b.GroupMin, b.GroupMax)
			}
			ab.AddRow(size,
				fmt.Sprintf("%d", b.Commits),
				fmt.Sprintf("%d", b.Admissions),
				formatNs(b.MeanFsyncNs),
				formatNs(b.FsyncPerAdmissionNs))
		}
		if err := ab.Render(out); err != nil {
			return err
		}
	}
	return nil
}
