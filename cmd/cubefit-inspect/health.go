package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"cubefit/internal/obs"
	"cubefit/internal/report"
	"cubefit/internal/telemetry"
)

// runHealth replays a health log (the JSONL written by
// `cubefit-server -health-log`) through a fresh rule engine and prints
// the reconstructed verdict timeline: the embedded configuration, every
// state transition with its firing rules and evidence, the final state,
// and the parity check against the transitions the live run recorded.
// A parity mismatch is an error (non-zero exit): it means the replayed
// engine no longer agrees with the one that produced the log.
func runHealth(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cubefit-inspect health", flag.ContinueOnError)
	var (
		logPath = fs.String("log", "", "health log (JSONL from cubefit-server -health-log, required)")
		jsonOut = fs.Bool("json", false, "emit the replay result as JSON instead of tables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logPath == "" {
		return fmt.Errorf("health: -log is required")
	}
	f, err := os.Open(*logPath)
	if err != nil {
		return err
	}
	//cubefit:vet-allow failclosed -- health log opened read-only; closing it cannot lose data
	defer f.Close()
	recs, err := obs.ReadHealthJSONL(f)
	if err != nil {
		return fmt.Errorf("reading %s: %w", *logPath, err)
	}
	res, err := telemetry.Replay(recs)
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	} else if err := renderHealthReplay(out, res); err != nil {
		return err
	}
	if !res.ParityOK() {
		return fmt.Errorf("health: replayed verdict timeline diverges from the %d transitions recorded live", len(res.Recorded))
	}
	return nil
}

func renderHealthReplay(out io.Writer, res telemetry.ReplayResult) error {
	cfg := res.Config
	fmt.Fprintf(out, "health log: %d ticks over %s, final state %s\n",
		res.Ticks, replaySpan(res), res.Final)
	fmt.Fprintf(out, "config: interval %s, recover after %d clean ticks\n", cfg.Interval, cfg.RecoverTicks)
	fmt.Fprintf(out, "  slo: P99 objective %s, budget %.2g, windows %s/%s, burn ≥%.1f× degraded / ≥%.1f× critical\n",
		cfg.Burn.Objective, cfg.Burn.Budget, cfg.Burn.FastWindow, cfg.Burn.SlowWindow,
		cfg.Burn.DegradedBurn, cfg.Burn.CriticalBurn)
	fmt.Fprintf(out, "  headroom: floor %.3g on %s; stall window %s\n",
		cfg.Headroom.Floor, orNone(cfg.Headroom.Series), cfg.Stall.Window)

	if len(res.Transitions) == 0 {
		fmt.Fprintf(out, "\nno state transitions: %s for the whole log\n", res.Final)
	} else {
		fmt.Fprintf(out, "\nverdict timeline (%d transitions, replayed):\n", len(res.Transitions))
		tb := report.NewTable("T", "Transition", "Rules", "Evidence")
		for _, tr := range res.Transitions {
			tb.AddRow(
				time.Duration(tr.TNs).String(),
				fmt.Sprintf("%s → %s", tr.From, tr.To),
				orNone(strings.Join(tr.Rules, ", ")),
				orNone(strings.Join(tr.Evidence, "; ")),
			)
		}
		if err := tb.Render(out); err != nil {
			return err
		}
	}

	if res.ParityOK() {
		fmt.Fprintf(out, "replay parity: OK — reconstruction matches the %d transitions recorded live\n",
			len(res.Recorded))
		return nil
	}
	fmt.Fprintf(out, "replay parity: MISMATCH — the live run recorded %d transitions:\n", len(res.Recorded))
	for _, tr := range res.Recorded {
		fmt.Fprintf(out, "  %s  %s → %s  [%s]\n",
			time.Duration(tr.TNs), tr.From, tr.To, strings.Join(tr.Rules, ", "))
	}
	return nil
}

// replaySpan is the wall-clock span the replayed transitions cover; the
// sample records carry monotonic timestamps starting near 0.
func replaySpan(res telemetry.ReplayResult) time.Duration {
	return time.Duration(res.Ticks) * res.Config.Interval
}

// orNone substitutes a dash for an empty cell (e.g. a recovery to
// healthy, which fires no rules).
func orNone(s string) string {
	if s == "" {
		return "—"
	}
	return s
}
