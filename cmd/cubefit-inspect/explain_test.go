package main

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cubefit/internal/clock"
	"cubefit/internal/core"
	"cubefit/internal/obs"
	"cubefit/internal/packing"
	"cubefit/internal/trace"
	"cubefit/internal/workload"
)

// tracedArtifacts produces a matching (events.jsonl, placement.json) pair
// from one instrumented CubeFit run.
func tracedArtifacts(t *testing.T) (eventsPath, snapPath string) {
	t.Helper()
	cf, err := core.New(core.Config{Gamma: 2, K: 10})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	eventsPath = filepath.Join(dir, "events.jsonl")
	ef, err := os.Create(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriter(ef)
	sink := obs.NewJSONL(bw)
	cf.SetRecorder(obs.Stamp(clock.Real(), sink))

	dist, err := workload.NewUniform(1, 15)
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewClientSource(workload.DefaultLoadModel(), dist, 13)
	if err != nil {
		t.Fatal(err)
	}
	if err := packing.PlaceAll(cf, workload.Take(src, 120)); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := ef.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}

	snapPath = filepath.Join(dir, "placement.json")
	sf, err := os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	if err := trace.Write(sf, cf.Placement()); err != nil {
		t.Fatal(err)
	}
	return eventsPath, snapPath
}

func TestExplainSummary(t *testing.T) {
	eventsPath, snapPath := tracedArtifacts(t)
	var out bytes.Buffer
	if err := run([]string{"explain", "-events", eventsPath, snapPath}, nil, &out); err != nil {
		t.Fatalf("explain: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"120 tenant admissions reconstructed",
		"admission paths:",
		"snapshot cross-check: 120 tenants checked, 0 mismatched",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestExplainSingleTenant(t *testing.T) {
	eventsPath, snapPath := tracedArtifacts(t)
	var out bytes.Buffer
	if err := run([]string{"explain", "-events", eventsPath, "-tenant", "3", snapPath},
		nil, &out); err != nil {
		t.Fatalf("explain -tenant: %v\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "tenant 3 (cubefit): path=") {
		t.Errorf("missing tenant header:\n%s", got)
	}
	if !strings.Contains(got, "replica 0 -> server ") {
		t.Errorf("missing replica lines:\n%s", got)
	}
	if !strings.Contains(got, "failover attribution (snapshot):") {
		t.Errorf("missing attribution:\n%s", got)
	}
}

func TestExplainErrors(t *testing.T) {
	eventsPath, _ := tracedArtifacts(t)
	if err := run([]string{"explain"}, nil, new(bytes.Buffer)); err == nil {
		t.Error("explain without -events should fail")
	}
	if err := run([]string{"explain", "-events", "/nonexistent.jsonl"}, nil, new(bytes.Buffer)); err == nil {
		t.Error("explain with a missing log should fail")
	}
	if err := run([]string{"explain", "-events", eventsPath, "-tenant", "99999"},
		nil, new(bytes.Buffer)); err == nil {
		t.Error("explain of an unknown tenant should fail")
	}
}
