package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestHeadroomSummary(t *testing.T) {
	eventsPath, _ := tracedArtifacts(t)
	var out bytes.Buffer
	if err := run([]string{"headroom", "-events", eventsPath}, nil, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"events replayed (γ=2)",
		"min slack",
		"red line 0.050",
		"trough:",
		"tightest",
		"Worst failure set",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("summary missing %q:\n%s", want, text)
		}
	}
}

func TestHeadroomCSV(t *testing.T) {
	eventsPath, _ := tracedArtifacts(t)
	var out bytes.Buffer
	if err := run([]string{"headroom", "-events", eventsPath, "-csv"}, nil, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if lines[0] != "seq,kind,tenant,tenants,servers,min_slack,min_server,below_redline,overloaded" {
		t.Fatalf("unexpected CSV header %q", lines[0])
	}
	// One sample per closed admission: the traced run admits 120 tenants.
	if len(lines) != 121 {
		t.Fatalf("expected 121 CSV lines, got %d", len(lines))
	}
	for _, line := range lines[1:] {
		if n := strings.Count(line, ","); n != 8 {
			t.Fatalf("CSV row with %d commas: %q", n, line)
		}
	}
}

func TestHeadroomErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"headroom"}, nil, &out); err == nil {
		t.Fatal("missing -events should fail")
	}
	if err := run([]string{"headroom", "-events", "/nonexistent/events.jsonl"}, nil, &out); err == nil {
		t.Fatal("unreadable events file should fail")
	}
}
