// Command cubefit-inspect audits a placement snapshot (the JSON produced
// by the controller's GET /v1/placement or by internal/trace): it
// validates the robustness invariant, summarizes utilization, lists the
// most loaded servers, and runs worst-case failure drills.
//
// Usage:
//
//	cubefit-inspect placement.json
//	curl -s localhost:8080/v1/placement | cubefit-inspect
//	cubefit-inspect -drills 2 placement.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"cubefit/internal/failure"
	"cubefit/internal/packing"
	"cubefit/internal/report"
	"cubefit/internal/trace"
	"cubefit/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cubefit-inspect:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("cubefit-inspect", flag.ContinueOnError)
	var (
		drills = fs.Int("drills", 0, "run worst-case failure drills for 1..N simultaneous failures (default γ−1)")
		top    = fs.Int("top", 5, "show the N most loaded servers")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	snap, err := trace.Read(in)
	if err != nil {
		return err
	}
	p, err := trace.Restore(snap)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "placement: γ=%d, %d tenants, %d servers used (%d opened)\n",
		p.Gamma(), p.NumTenants(), p.NumUsedServers(), p.NumServers())
	fmt.Fprintf(out, "total load %.2f, utilization %.1f%%\n", p.TotalLoad(), 100*p.Utilization())

	if err := p.Validate(); err != nil {
		fmt.Fprintf(out, "ROBUSTNESS: VIOLATED — %v\n", err)
	} else {
		fmt.Fprintf(out, "robustness: OK (tolerates any %d simultaneous failures)\n", p.Gamma()-1)
	}

	// Most loaded servers with their failover reserves.
	servers := append([]*packing.Server(nil), p.Servers()...)
	sort.Slice(servers, func(i, j int) bool {
		if servers[i].Level() != servers[j].Level() { //cubefit:vet-allow floatcmp -- exact tie-break keeps the comparator a strict weak order
			return servers[i].Level() > servers[j].Level()
		}
		return servers[i].ID() < servers[j].ID()
	})
	n := *top
	if n > len(servers) {
		n = len(servers)
	}
	if n > 0 {
		fmt.Fprintf(out, "\ntop %d servers by load:\n", n)
		tb := report.NewTable("Server", "Level", "Replicas", "Reserve", "Headroom")
		for _, s := range servers[:n] {
			reserve := s.TopShared(p.Gamma() - 1)
			tb.AddRow(
				fmt.Sprintf("%d", s.ID()),
				fmt.Sprintf("%.3f", s.Level()),
				fmt.Sprintf("%d", s.NumReplicas()),
				fmt.Sprintf("%.3f", reserve),
				fmt.Sprintf("%.3f", 1-s.Level()-reserve),
			)
		}
		if err := tb.Render(out); err != nil {
			return err
		}
	}

	// Failure drills.
	maxDrill := *drills
	if maxDrill == 0 {
		maxDrill = p.Gamma() - 1
	}
	if maxDrill > 0 && p.NumUsedServers() > 0 {
		fmt.Fprintf(out, "\nworst-case failure drills (client capacity %d):\n", workload.MaxClientsPerServer)
		tb := report.NewTable("Failures", "Servers", "Max client load", "Post-failure load", "Lost clients")
		for f := 1; f <= maxDrill && f < p.NumServers(); f++ {
			plan, err := failure.WorstCase(p, f)
			if err != nil {
				return err
			}
			tb.AddRow(
				fmt.Sprintf("%d", f),
				fmt.Sprintf("%v", plan.Servers),
				fmt.Sprintf("%.1f", plan.MaxClientLoad),
				fmt.Sprintf("%.3f", p.MaxPostFailureLoad(plan.Servers)),
				fmt.Sprintf("%d", plan.LostClients),
			)
		}
		if err := tb.Render(out); err != nil {
			return err
		}
	}
	return nil
}
