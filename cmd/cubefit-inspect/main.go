// Command cubefit-inspect audits a placement snapshot (the JSON produced
// by the controller's GET /v1/placement or by internal/trace): it
// validates the robustness invariant, summarizes utilization, lists the
// most loaded servers, and runs worst-case failure drills.
//
// The explain subcommand instead replays a decision event log (the JSONL
// written by `cubefit-sim -events` or streamed from GET /debug/events)
// and reconstructs each tenant's admission path — first-stage bin IDs, or
// cube class/counter/digits/slot, or the tiny policy, or a rejection.
// Given a snapshot too, it cross-checks the reconstructed servers against
// the placement and prints the replica-to-server failover attribution.
//
// The headroom subcommand replays the same kind of event log through the
// incremental robustness headroom auditor (internal/headroom) and reports
// the worst-case failover safety margin over time: one sample per closed
// admission or departure (-csv for the raw series), the trough, and the
// tightest servers with their arg-max failure sets attributed to the
// tenants causing them.
//
// The latency subcommand replays an admission span log (the JSONL written
// by `cubefit-server -spans` or `cubefit-load -spans`) and decomposes
// end-to-end admission latency into pipeline stages — queue, place, WAL
// stage, fsync, ack — with per-stage P50/P99, the telescoping
// reconciliation check, and fsync amortization versus group-commit size.
//
// The health subcommand replays a health log (the JSONL written by
// `cubefit-server -health-log`) through a fresh telemetry rule engine
// and reconstructs the verdict timeline — every healthy/degraded/critical
// transition with its firing rules and evidence — then checks parity
// against the transitions the live run recorded; a mismatch exits
// non-zero.
//
// Usage:
//
//	cubefit-inspect placement.json
//	curl -s localhost:8080/v1/placement | cubefit-inspect
//	cubefit-inspect -drills 2 placement.json
//	cubefit-inspect explain -events events.jsonl [placement.json]
//	cubefit-inspect explain -events events.jsonl -tenant 42 placement.json
//	cubefit-inspect headroom -events events.jsonl [-redline 0.05] [-top 5] [-csv]
//	cubefit-inspect latency -spans spans.jsonl [-json]
//	cubefit-inspect health -log health.jsonl [-json]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"cubefit/internal/failure"
	"cubefit/internal/obs"
	"cubefit/internal/packing"
	"cubefit/internal/report"
	"cubefit/internal/trace"
	"cubefit/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cubefit-inspect:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, out io.Writer) error {
	if len(args) > 0 && args[0] == "explain" {
		return runExplain(args[1:], out)
	}
	if len(args) > 0 && args[0] == "headroom" {
		return runHeadroom(args[1:], out)
	}
	if len(args) > 0 && args[0] == "latency" {
		return runLatency(args[1:], out)
	}
	if len(args) > 0 && args[0] == "health" {
		return runHealth(args[1:], out)
	}
	fs := flag.NewFlagSet("cubefit-inspect", flag.ContinueOnError)
	var (
		drills = fs.Int("drills", 0, "run worst-case failure drills for 1..N simultaneous failures (default γ−1)")
		top    = fs.Int("top", 5, "show the N most loaded servers")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		//cubefit:vet-allow failclosed -- snapshot opened read-only; closing it cannot lose data
		defer f.Close()
		in = f
	}
	snap, err := trace.Read(in)
	if err != nil {
		return err
	}
	p, err := trace.Restore(snap)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "placement: γ=%d, %d tenants, %d servers used (%d opened)\n",
		p.Gamma(), p.NumTenants(), p.NumUsedServers(), p.NumServers())
	fmt.Fprintf(out, "total load %.2f, utilization %.1f%%\n", p.TotalLoad(), 100*p.Utilization())

	if err := p.Validate(); err != nil {
		fmt.Fprintf(out, "ROBUSTNESS: VIOLATED — %v\n", err)
	} else {
		fmt.Fprintf(out, "robustness: OK (tolerates any %d simultaneous failures)\n", p.Gamma()-1)
	}

	// Most loaded servers with their failover reserves.
	servers := append([]*packing.Server(nil), p.Servers()...)
	sort.Slice(servers, func(i, j int) bool {
		if servers[i].Level() != servers[j].Level() { //cubefit:vet-allow floatcmp -- exact tie-break keeps the comparator a strict weak order
			return servers[i].Level() > servers[j].Level()
		}
		return servers[i].ID() < servers[j].ID()
	})
	n := *top
	if n > len(servers) {
		n = len(servers)
	}
	if n > 0 {
		fmt.Fprintf(out, "\ntop %d servers by load:\n", n)
		tb := report.NewTable("Server", "Level", "Replicas", "Reserve", "Headroom")
		for _, s := range servers[:n] {
			reserve := s.TopShared(p.Gamma() - 1)
			tb.AddRow(
				fmt.Sprintf("%d", s.ID()),
				fmt.Sprintf("%.3f", s.Level()),
				fmt.Sprintf("%d", s.NumReplicas()),
				fmt.Sprintf("%.3f", reserve),
				fmt.Sprintf("%.3f", 1-s.Level()-reserve),
			)
		}
		if err := tb.Render(out); err != nil {
			return err
		}
	}

	// Failure drills.
	maxDrill := *drills
	if maxDrill == 0 {
		maxDrill = p.Gamma() - 1
	}
	if maxDrill > 0 && p.NumUsedServers() > 0 {
		fmt.Fprintf(out, "\nworst-case failure drills (client capacity %d):\n", workload.MaxClientsPerServer)
		tb := report.NewTable("Failures", "Servers", "Max client load", "Post-failure load", "Lost clients")
		for f := 1; f <= maxDrill && f < p.NumServers(); f++ {
			plan, err := failure.WorstCase(p, f)
			if err != nil {
				return err
			}
			tb.AddRow(
				fmt.Sprintf("%d", f),
				fmt.Sprintf("%v", plan.Servers),
				fmt.Sprintf("%.1f", plan.MaxClientLoad),
				fmt.Sprintf("%.3f", p.MaxPostFailureLoad(plan.Servers)),
				fmt.Sprintf("%d", plan.LostClients),
			)
		}
		if err := tb.Render(out); err != nil {
			return err
		}
	}
	return nil
}

// runExplain replays a decision event log and reports the reconstructed
// admission paths; see the package comment for usage.
func runExplain(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cubefit-inspect explain", flag.ContinueOnError)
	var (
		eventsPath = fs.String("events", "", "decision event log (JSONL, required)")
		tenant     = fs.Int("tenant", -1, "show the full decision trail of one tenant")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *eventsPath == "" {
		return fmt.Errorf("explain: -events is required")
	}
	f, err := os.Open(*eventsPath)
	if err != nil {
		return err
	}
	//cubefit:vet-allow failclosed -- event log opened read-only; closing it cannot lose data
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		return fmt.Errorf("reading %s: %w", *eventsPath, err)
	}
	ds := obs.Decisions(events)

	var snap *trace.Snapshot
	if fs.NArg() > 0 {
		sf, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		//cubefit:vet-allow failclosed -- snapshot opened read-only; closing it cannot lose data
		defer sf.Close()
		s, err := trace.Read(sf)
		if err != nil {
			return err
		}
		snap = &s
	}

	if *tenant >= 0 {
		return explainTenant(out, ds, snap, *tenant)
	}

	fmt.Fprintf(out, "%d events, %d tenant admissions reconstructed\n", len(events), len(ds))
	counts := obs.CountPaths(ds)
	paths := make([]string, 0, len(counts))
	for p := range counts {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	fmt.Fprintln(out, "\nadmission paths:")
	for _, p := range paths {
		fmt.Fprintf(out, "  %-12s %d\n", p, counts[p])
	}
	if snap != nil {
		checked, mismatched := crossCheck(out, ds, *snap)
		fmt.Fprintf(out, "\nsnapshot cross-check: %d tenants checked, %d mismatched\n",
			checked, mismatched)
		if mismatched > 0 {
			return fmt.Errorf("explain: %d tenants disagree with the snapshot", mismatched)
		}
	}
	return nil
}

// explainTenant prints one tenant's full reconstructed decision.
func explainTenant(out io.Writer, ds []obs.Decision, snap *trace.Snapshot, tenant int) error {
	var d *obs.Decision
	for i := range ds {
		if ds[i].Tenant == tenant {
			d = &ds[i]
			break
		}
	}
	if d == nil {
		return fmt.Errorf("explain: tenant %d not found in the event log", tenant)
	}
	fmt.Fprintf(out, "tenant %d (%s): path=%s size=%.4f probes=%d\n",
		d.Tenant, d.Engine, d.Path, d.Size, d.Probes)
	if d.Class != obs.Unset {
		fmt.Fprintf(out, "  cube: class=%d tiny=%v counter=%d digits=%v\n",
			d.Class, d.Tiny, d.Counter, d.Digits)
	}
	for _, r := range d.Replicas {
		how := "cube slot"
		slot := fmt.Sprintf("%d", r.Slot)
		if r.FirstStage {
			how, slot = "first-stage best fit", "-"
		} else if r.Slot == obs.Unset {
			how, slot = "single-stage", "-"
		}
		fmt.Fprintf(out, "  replica %d -> server %d  slot %s  (%s)\n",
			r.Replica, r.Server, slot, how)
	}
	for _, reason := range d.Rollbacks {
		fmt.Fprintf(out, "  rollback: %s\n", reason)
	}
	if d.Reason != "" {
		fmt.Fprintf(out, "  rejected: %s\n", d.Reason)
	}
	if snap != nil {
		ats, err := obs.Attribute(*snap, tenant)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "  failover attribution (snapshot):")
		for _, at := range ats {
			fmt.Fprintf(out, "    replica %d on server %d -> fails over to %v\n",
				at.Replica, at.Server, at.FailoverTo)
		}
	}
	return nil
}

// crossCheck compares each admitted tenant's reconstructed replica
// servers against the snapshot and prints any disagreement.
func crossCheck(out io.Writer, ds []obs.Decision, snap trace.Snapshot) (checked, mismatched int) {
	hosts := make(map[int][]int)
	for _, s := range snap.Servers {
		for _, r := range s.Replicas {
			hosts[r.Tenant] = append(hosts[r.Tenant], s.ID)
		}
	}
	for _, d := range ds {
		got, inSnap := hosts[d.Tenant]
		if !inSnap {
			continue // departed or rejected
		}
		checked++
		want := make([]int, 0, len(d.Replicas))
		for _, r := range d.Replicas {
			want = append(want, r.Server)
		}
		sort.Ints(got)
		sort.Ints(want)
		if !equalInts(got, want) {
			mismatched++
			fmt.Fprintf(out, "  MISMATCH tenant %d: log says %v, snapshot says %v\n",
				d.Tenant, want, got)
		}
	}
	return checked, mismatched
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
