package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: cubefit
cpu: AMD EPYC 7B13
BenchmarkPlaceCubeFit-8   	   10000	     13038 ns/op	     974 B/op	      11 allocs/op
BenchmarkPlaceRFI-8       	   20000	      6000 ns/op	     706 B/op	       9 allocs/op
BenchmarkAblationClasses/k=10-8 	       1	1200000000 ns/op	       119.0 servers	 1000 B/op	       5 allocs/op
some benchmark log line
PASS
ok  	cubefit	231.718s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "cubefit" {
		t.Errorf("header = %q/%q/%q, want linux/amd64/cubefit", rep.Goos, rep.Goarch, rep.Pkg)
	}
	if rep.CPU != "AMD EPYC 7B13" {
		t.Errorf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(rep.Benchmarks))
	}

	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkPlaceCubeFit" || b.Procs != 8 || b.Iterations != 10000 {
		t.Errorf("first = %+v", b)
	}
	if b.Metrics["ns/op"] != 13038 || b.Metrics["B/op"] != 974 || b.Metrics["allocs/op"] != 11 {
		t.Errorf("first metrics = %v", b.Metrics)
	}

	// Sub-benchmark keeps its slash path and custom ReportMetric units.
	sub := rep.Benchmarks[2]
	if sub.Name != "BenchmarkAblationClasses/k=10" {
		t.Errorf("sub name = %q", sub.Name)
	}
	if sub.Metrics["servers"] != 119 {
		t.Errorf("servers metric = %v", sub.Metrics["servers"])
	}
}

func TestParseIgnoresNonResultLines(t *testing.T) {
	in := "BenchmarkFoo logging something\nBenchmarkBar-4 bad iters ns/op\nPASS\n"
	rep, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Errorf("got %d benchmarks from noise, want 0", len(rep.Benchmarks))
	}
}

func TestParseEmptyInputYieldsEmptyArray(t *testing.T) {
	rep, err := Parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"benchmarks":[]`) {
		t.Errorf("empty report should marshal benchmarks as [], got %s", data)
	}
}

func TestRunRoundTrip(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(sampleOutput), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(rep.Benchmarks) != 3 {
		t.Errorf("round-trip lost benchmarks: %d", len(rep.Benchmarks))
	}
}
