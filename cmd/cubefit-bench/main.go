// Command cubefit-bench converts the text output of `go test -bench` into
// a machine-readable JSON report, so CI can archive benchmark runs and
// diff them across commits without scraping free-form text.
//
// Usage:
//
//	go test -bench=. -benchmem -run '^$' . > bench.out
//	cubefit-bench -out BENCH.json bench.out
//	go test -bench=. -benchmem -run '^$' . | cubefit-bench
//	cubefit-bench -compare old.json new.json [-threshold 0.20]
//
// It understands the standard benchmark line format — name, iteration
// count, then value/unit pairs — including -benchmem columns (B/op,
// allocs/op) and custom b.ReportMetric units such as the "servers"
// metric reported by the ablation benchmarks. Sub-benchmark names keep
// their slashes; the trailing -N GOMAXPROCS suffix is split out.
//
// The -compare mode diffs two JSON reports previously produced by this
// tool and prints a per-benchmark table of ns/op, B/op, and allocs/op
// with relative deltas. Exit codes: 0 when no tracked metric regressed
// beyond the threshold (default 0.20 = +20%), 1 on usage or I/O errors,
// 2 when at least one metric regressed — so CI can gate on slowdowns
// while treating noise within the threshold as a pass.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cubefit-bench:", err)
		if errors.Is(err, ErrRegression) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// Report is the JSON document: the run's environment header plus one
// entry per benchmark result line.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name without the -N GOMAXPROCS suffix,
	// e.g. "BenchmarkPlaceCubeFit" or "BenchmarkAblationClasses/k=10".
	Name string `json:"name"`
	// Procs is the GOMAXPROCS the benchmark ran with (0 if absent).
	Procs int `json:"procs,omitempty"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value: ns/op, B/op, allocs/op, and any custom
	// b.ReportMetric units (e.g. servers).
	Metrics map[string]float64 `json:"metrics"`
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) >= 1 && args[0] == "-compare" {
		return runCompare(args[1:], stdout)
	}
	var outPath string
	rest := args
	if len(args) >= 2 && args[0] == "-out" {
		outPath, rest = args[1], args[2:]
	}
	in := stdin
	if len(rest) > 1 {
		return fmt.Errorf("usage: cubefit-bench [-out report.json] [bench.out]")
	}
	if len(rest) == 1 {
		f, err := os.Open(rest[0])
		if err != nil {
			return err
		}
		//cubefit:vet-allow failclosed -- bench output opened read-only; closing it cannot lose data
		defer f.Close()
		in = f
	}
	rep, err := Parse(in)
	if err != nil {
		return err
	}
	out := stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		// The report is the command's durable artifact; the close error
		// joins the encode result instead of vanishing.
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		werr := enc.Encode(rep)
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		return cerr
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Parse reads `go test -bench` text output into a Report. Lines that are
// neither a recognized header nor a benchmark result (PASS, ok, test log
// output) are ignored, so the raw `go test` stream can be piped directly.
func Parse(r io.Reader) (Report, error) {
	var rep Report
	rep.Benchmarks = []Benchmark{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}

// parseLine parses one benchmark result line:
//
//	BenchmarkName-8   10000   13038 ns/op   974 B/op   11 allocs/op
//
// Returns ok=false for lines that start with "Benchmark" but are not
// result lines (e.g. a benchmark's own log output).
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	// Minimum: name, iterations, one value/unit pair; pairs come in twos.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Metrics: make(map[string]float64)}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	for i := 2; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
