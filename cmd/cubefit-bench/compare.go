package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
)

// ErrRegression is returned by the compare mode when at least one tracked
// metric regressed beyond the threshold; main translates it to exit code 2
// so CI can distinguish "benchmarks got slower" from operational errors.
var ErrRegression = errors.New("benchmark regression beyond threshold")

// comparedUnits are the metrics the diff tracks, in display order. Lower
// is better for all of them; custom units (e.g. "servers") are ignored
// because their direction is benchmark-specific. The latency and pipeline
// stage percentiles come from cubefit-load reports (tracing enabled);
// a report without them — e.g. a -trace=false baseline — simply compares
// on the throughput metrics, since absent units are skipped.
var comparedUnits = []string{
	"ns/op", "B/op", "allocs/op",
	"p50-ns", "p99-ns",
	"queue-p50-ns", "queue-p99-ns",
	"place-p50-ns", "place-p99-ns",
	"commit-p50-ns", "commit-p99-ns",
}

// defaultThreshold is the relative slowdown tolerated before a metric
// counts as a regression (benchmarks on shared machines are noisy).
const defaultThreshold = 0.20

// runCompare implements `cubefit-bench -compare old.json new.json
// [-threshold f]`: it diffs two JSON reports produced by this tool and
// prints a per-benchmark table of the tracked metrics. It returns
// ErrRegression when any metric grew by more than threshold.
func runCompare(args []string, stdout io.Writer) error {
	threshold := defaultThreshold
	var paths []string
	for i := 0; i < len(args); i++ {
		if args[i] == "-threshold" {
			if i+1 == len(args) {
				return errors.New("-threshold needs a value")
			}
			v, err := strconv.ParseFloat(args[i+1], 64)
			if err != nil || v < 0 {
				return fmt.Errorf("invalid threshold %q", args[i+1])
			}
			threshold = v
			i++
			continue
		}
		paths = append(paths, args[i])
	}
	if len(paths) != 2 {
		return errors.New("usage: cubefit-bench -compare old.json new.json [-threshold 0.20]")
	}
	oldRep, err := loadReport(paths[0])
	if err != nil {
		return err
	}
	newRep, err := loadReport(paths[1])
	if err != nil {
		return err
	}
	regressions := compare(stdout, oldRep, newRep, threshold)
	if regressions > 0 {
		return fmt.Errorf("%w: %d metric(s) worse than +%.0f%%", ErrRegression, regressions, threshold*100)
	}
	return nil
}

func loadReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// compare prints the metric diff of every benchmark present in both
// reports (in the new report's order) and returns the regression count.
// Benchmarks present in only one report are listed but never counted as
// regressions — adding or retiring a benchmark is not a slowdown.
func compare(w io.Writer, oldRep, newRep Report, threshold float64) int {
	oldBy := make(map[string]Benchmark, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Name] = b
	}
	fmt.Fprintf(w, "%-52s %-10s %14s %14s %8s\n", "benchmark", "unit", "old", "new", "delta")
	regressions := 0
	seen := make(map[string]bool, len(newRep.Benchmarks))
	for _, nb := range newRep.Benchmarks {
		seen[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Fprintf(w, "%-52s %-10s %14s %14s %8s\n", nb.Name, "-", "(absent)", "", "new")
			continue
		}
		for _, unit := range comparedUnits {
			nv, nok := nb.Metrics[unit]
			ov, ook := ob.Metrics[unit]
			if !nok || !ook {
				continue
			}
			status := ""
			var delta float64
			if ov != 0 {
				delta = (nv - ov) / ov
			} else if nv != 0 {
				delta = 1
			}
			switch {
			case delta > threshold:
				status = "  REGRESSION"
				regressions++
			case delta < -threshold:
				status = "  improved"
			}
			fmt.Fprintf(w, "%-52s %-10s %14.4g %14.4g %+7.1f%%%s\n",
				nb.Name, unit, ov, nv, delta*100, status)
		}
	}
	var removed []string
	for name := range oldBy {
		if !seen[name] {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(w, "%-52s %-10s %14s %14s %8s\n", name, "-", "", "(absent)", "removed")
	}
	return regressions
}
