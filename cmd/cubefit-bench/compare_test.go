package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name string, rep Report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func bench(name string, ns, bytesOp, allocs float64) Benchmark {
	return Benchmark{
		Name:       name,
		Iterations: 100,
		Metrics:    map[string]float64{"ns/op": ns, "B/op": bytesOp, "allocs/op": allocs},
	}
}

func TestCompareNoRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", Report{Benchmarks: []Benchmark{
		bench("BenchmarkFast", 1000, 512, 10),
	}})
	newPath := writeReport(t, dir, "new.json", Report{Benchmarks: []Benchmark{
		bench("BenchmarkFast", 400, 100, 2),
	}})
	var out bytes.Buffer
	if err := run([]string{"-compare", oldPath, newPath}, nil, &out); err != nil {
		t.Fatalf("improvement reported as failure: %v", err)
	}
	if !strings.Contains(out.String(), "improved") {
		t.Errorf("expected an 'improved' marker in:\n%s", out.String())
	}
	if strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("no metric regressed, but output says REGRESSION:\n%s", out.String())
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", Report{Benchmarks: []Benchmark{
		bench("BenchmarkSlow", 1000, 512, 10),
	}})
	newPath := writeReport(t, dir, "new.json", Report{Benchmarks: []Benchmark{
		bench("BenchmarkSlow", 1500, 512, 10),
	}})
	var out bytes.Buffer
	err := run([]string{"-compare", oldPath, newPath}, nil, &out)
	if !errors.Is(err, ErrRegression) {
		t.Fatalf("err = %v, want ErrRegression", err)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("expected REGRESSION marker in:\n%s", out.String())
	}
}

func TestCompareThresholdFlag(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", Report{Benchmarks: []Benchmark{
		bench("BenchmarkBorderline", 1000, 512, 10),
	}})
	// +50% ns/op: a regression at the default 0.20 threshold, tolerated at 0.60.
	newPath := writeReport(t, dir, "new.json", Report{Benchmarks: []Benchmark{
		bench("BenchmarkBorderline", 1500, 512, 10),
	}})
	var out bytes.Buffer
	if err := run([]string{"-compare", oldPath, newPath, "-threshold", "0.60"}, nil, &out); err != nil {
		t.Fatalf("within threshold, got %v", err)
	}
	out.Reset()
	if err := run([]string{"-compare", "-threshold", "0.10", oldPath, newPath}, nil, &out); !errors.Is(err, ErrRegression) {
		t.Fatalf("err = %v, want ErrRegression at tight threshold", err)
	}
}

func TestCompareAddedAndRemovedBenchmarks(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", Report{Benchmarks: []Benchmark{
		bench("BenchmarkGone", 1000, 512, 10),
	}})
	newPath := writeReport(t, dir, "new.json", Report{Benchmarks: []Benchmark{
		bench("BenchmarkNew", 1000, 512, 10),
	}})
	var out bytes.Buffer
	if err := run([]string{"-compare", oldPath, newPath}, nil, &out); err != nil {
		t.Fatalf("added/removed benchmarks must not count as regressions: %v", err)
	}
	for _, want := range []string{"BenchmarkGone", "removed", "BenchmarkNew", "new"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestCompareStageMetrics: the pipeline stage percentiles from
// cubefit-load reports are tracked (a stage regression fails the gate),
// and a baseline without them — a -trace=false run — still compares on
// the throughput metrics alone.
func TestCompareStageMetrics(t *testing.T) {
	dir := t.TempDir()
	stage := func(ns, queueP99 float64) Benchmark {
		b := bench("Load/batch", ns, 0, 0)
		b.Metrics["queue-p50-ns"] = queueP99 / 2
		b.Metrics["queue-p99-ns"] = queueP99
		b.Metrics["commit-p99-ns"] = 5000
		return b
	}
	oldPath := writeReport(t, dir, "old.json", Report{Benchmarks: []Benchmark{stage(1000, 8000)}})
	newPath := writeReport(t, dir, "new.json", Report{Benchmarks: []Benchmark{stage(1000, 20000)}})
	var out bytes.Buffer
	err := run([]string{"-compare", oldPath, newPath}, nil, &out)
	if !errors.Is(err, ErrRegression) {
		t.Fatalf("queue-p99-ns doubled, err = %v, want ErrRegression", err)
	}
	if !strings.Contains(out.String(), "queue-p99-ns") {
		t.Errorf("regression not attributed to queue-p99-ns:\n%s", out.String())
	}

	// Tracing-off baseline: stage columns absent on one side are skipped.
	barePath := writeReport(t, dir, "bare.json", Report{Benchmarks: []Benchmark{
		bench("Load/batch", 1000, 0, 0),
	}})
	out.Reset()
	if err := run([]string{"-compare", barePath, newPath}, nil, &out); err != nil {
		t.Fatalf("stage columns missing from the baseline must be skipped: %v", err)
	}
}

func TestCompareUsageErrors(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-compare"},
		{"-compare", "only-one.json"},
		{"-compare", "a.json", "b.json", "-threshold"},
		{"-compare", "a.json", "b.json", "-threshold", "nope"},
		{"-compare", "a.json", "b.json", "-threshold", "-1"},
	} {
		err := run(args, nil, &out)
		if err == nil {
			t.Errorf("args %v: expected error", args)
		}
		if errors.Is(err, ErrRegression) {
			t.Errorf("args %v: usage error must not be a regression (exit 2): %v", args, err)
		}
	}
	if err := run([]string{"-compare", "/nonexistent/a.json", "/nonexistent/b.json"}, nil, &out); err == nil || errors.Is(err, ErrRegression) {
		t.Errorf("missing file: err = %v, want non-regression error", err)
	}
}
