// Command cubefit-sim regenerates the paper's large-scale consolidation
// results: Figure 6 (percentage server savings of CubeFit over RFI across
// tenant distributions, with 95% confidence intervals) and Table I (yearly
// dollar savings for the uniform and zipfian system workloads).
//
// Usage:
//
//	cubefit-sim [-tenants 50000] [-runs 10] [-k 10] [-gamma 2] [-mu 0.85]
//	            [-seed 1] [-table1] [-quick] [-workers N]
//	            [-cpuprofile cpu.out] [-memprofile mem.out]
//	cubefit-sim -events out.jsonl [-trace out.json] [-tenants N] [-seed S]
//	cubefit-sim -headroom curves.csv [-tenants N] [-seed S]
//
// Without flags it runs the full paper configuration (10 runs × 50,000
// tenants × 11 distributions), which takes a few minutes; -quick reduces
// the scale for a fast smoke run. -workers N simulates the independent
// runs of each distribution on N goroutines; the output is bit-identical
// to -workers 1 because every run draws from its own pre-derived seed and
// results merge in run order. -cpuprofile/-memprofile write pprof profiles
// of the whole invocation, so future performance work starts from data.
//
// With -events (and/or -trace) it instead performs one deterministic
// uniform(1..15) CubeFit run with the decision flight recorder attached,
// writing every placement event as JSON lines to the -events file and the
// final placement snapshot to the -trace file. Replay the log with
// `cubefit-inspect explain -events out.jsonl [out.json]`.
//
// With -headroom it runs CubeFit and RFI over the same arrival sequence
// with incremental robustness headroom auditors attached and writes the
// per-arrival minimum worst-case failover slack of both engines as CSV —
// the safety-margin curves contrasting CubeFit's γ−1-failure reserve with
// RFI's single-failure interleaving.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"cubefit/internal/clock"
	"cubefit/internal/core"
	"cubefit/internal/costs"
	"cubefit/internal/obs"
	"cubefit/internal/report"
	"cubefit/internal/rfi"
	"cubefit/internal/sim"
	"cubefit/internal/trace"
	"cubefit/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cubefit-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cubefit-sim", flag.ContinueOnError)
	var (
		tenants = fs.Int("tenants", 50000, "tenants per run")
		runs    = fs.Int("runs", 10, "independent runs per distribution")
		k       = fs.Int("k", 10, "CubeFit classes (paper: 10 for simulations)")
		gamma   = fs.Int("gamma", 2, "replicas per tenant")
		mu      = fs.Float64("mu", rfi.DefaultMu, "RFI interleaving parameter")
		seed    = fs.Uint64("seed", 1, "master random seed")
		table1  = fs.Bool("table1", false, "print only Table I (uniform 1..15 and zipf(3))")
		quick   = fs.Bool("quick", false, "reduced scale (2000 tenants, 3 runs)")
		timing  = fs.Bool("timing", false, "also measure placement wall-clock time per algorithm")
		events  = fs.String("events", "", "traced run: write decision events as JSONL to this file")
		trc     = fs.String("trace", "", "traced run: write the final placement snapshot to this file")
		hdroom  = fs.String("headroom", "", "headroom run: write per-arrival CubeFit vs RFI min-slack curves as CSV to this file")
		workers = fs.Int("workers", 1, "concurrent runs per distribution (results identical for any value)")
		cpuprof = fs.String("cpuprofile", "", "write a CPU profile of the invocation to this file")
		memprof = fs.String("memprofile", "", "write an allocation profile of the invocation to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := startProfiles(*cpuprof, *memprof)
	if err != nil {
		return err
	}
	defer stopProfiles()
	if *quick {
		*tenants, *runs = 2000, 3
	}
	if *hdroom != "" {
		return runHeadroomCurves(out, *hdroom, *tenants, *gamma, *k, *mu, *seed)
	}
	if *events != "" || *trc != "" {
		if *quick {
			*tenants = 2000
		}
		return runTraced(out, *events, *trc, *tenants, *gamma, *k, *seed)
	}

	model := workload.DefaultLoadModel()
	cubeFactory := sim.CubeFitFactory(core.Config{Gamma: *gamma, K: *k}, &model)
	rfiFactory := sim.RFIFactory(rfi.Config{Gamma: *gamma, Mu: *mu})

	dists, err := sim.DefaultSweep()
	if err != nil {
		return err
	}
	if *table1 {
		dists = dists[:0]
		u, err := workload.NewUniform(1, 15)
		if err != nil {
			return err
		}
		z, err := workload.NewZipf(3, workload.MaxClientsPerServer)
		if err != nil {
			return err
		}
		dists = append(dists, u, z)
	}

	fmt.Fprintf(out, "Consolidation simulation: %s vs %s, %d tenants × %d runs\n\n",
		cubeFactory.Name, rfiFactory.Name, *tenants, *runs)

	var results []sim.ConsolidationResult
	for _, dist := range dists {
		spec := sim.ConsolidationSpec{
			Tenants: *tenants,
			Runs:    *runs,
			Seed:    *seed,
			Model:   model,
			Dist:    dist,
			Workers: *workers,
		}
		res, err := sim.RunConsolidation(spec, cubeFactory, rfiFactory)
		if err != nil {
			return err
		}
		results = append(results, res)
		fmt.Fprintf(out, "  %-22s rfi=%6.0f  cubefit=%6.0f  savings=%5.1f%% ±%.1f\n",
			res.Distribution, res.B.Servers.Mean, res.A.Servers.Mean,
			res.SavingsPct.Mean, res.SavingsPct.Half)
	}
	fmt.Fprintln(out)

	if !*table1 {
		// Figure 6: savings bar chart.
		bars := make([]report.Bar, 0, len(results))
		for _, r := range results {
			bars = append(bars, report.Bar{
				Label: r.Distribution,
				Value: r.SavingsPct.Mean,
				Err:   r.SavingsPct.Half,
			})
		}
		if err := report.BarChart(out, "Figure 6: % server savings of CubeFit over RFI (95% CI)", "%", 30, bars); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	// Table I for the two system distributions (when present in the sweep).
	tb := report.NewTable("Distribution", "RFI Servers", "CubeFit Saved", "Dollar Savings")
	model2 := costs.DefaultModel()
	printed := false
	for _, r := range results {
		if !*table1 && r.Distribution != "uniform(1..15)" && r.Distribution != "zipf(s=3, 1..52)" {
			continue
		}
		row, err := sim.TableI(r, model2)
		if err != nil {
			return err
		}
		tb.AddRow(row.Distribution,
			fmt.Sprintf("%d", row.BaselineServers),
			fmt.Sprintf("%d", row.SavedServers),
			report.Money(row.YearlySavings))
		printed = true
	}
	if printed {
		fmt.Fprintln(out, "Table I: yearly cost savings of CubeFit over RFI")
		if err := tb.Render(out); err != nil {
			return err
		}
	}

	if *timing {
		u, err := workload.NewUniform(1, 15)
		if err != nil {
			return err
		}
		src, err := workload.NewClientSource(model, u, *seed)
		if err != nil {
			return err
		}
		ts := workload.Take(src, *tenants)
		fmt.Fprintf(out, "\nPlacement time for %d uniform(1..15) tenants:\n", *tenants)
		for _, f := range []sim.Factory{cubeFactory, rfiFactory} {
			res, err := sim.MeasureTiming(f, ts)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "  %-22s total %v  (%v/tenant, %d servers)\n",
				res.Algorithm, res.Total.Round(time.Millisecond),
				res.PerTenant.Round(time.Microsecond), res.Servers)
		}
	}
	return nil
}

// startProfiles starts CPU profiling and/or arranges a heap profile dump,
// returning a stop function to defer. Empty paths are skipped. The heap
// profile is written when the stop function runs, after a GC, so it
// reflects live allocations at the end of the run plus cumulative
// allocation counts.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			if cerr := cpuFile.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "cubefit-sim: cpuprofile:", cerr)
			}
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "cubefit-sim: cpuprofile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cubefit-sim: memprofile:", err)
				return
			}
			defer func() {
				if err := f.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "cubefit-sim: memprofile:", err)
				}
			}()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "cubefit-sim: memprofile:", err)
			}
		}
	}, nil
}

// tracedConfig is the CubeFit configuration of a traced run: the same
// prune slack the consolidation sweep derives from the load model, so a
// traced run places tenants exactly like the Figure 6 experiments (and a
// fresh core.New(tracedConfig(...)) run on the same tenant sequence
// reproduces the traced decisions, which the round-trip test exploits).
func tracedConfig(gamma, k int, model workload.LoadModel) core.Config {
	return core.Config{
		Gamma:      gamma,
		K:          k,
		PruneSlack: model.Load(1) / float64(gamma) * 0.99,
	}
}

// runTraced performs one deterministic uniform(1..15) CubeFit run with
// the flight recorder attached. eventsPath receives the decision event
// stream as JSON lines; tracePath (optional) receives the final placement
// snapshot. Either may be empty.
func runTraced(out io.Writer, eventsPath, tracePath string, tenants, gamma, k int, seed uint64) (err error) {
	model := workload.DefaultLoadModel()
	cf, err := core.New(tracedConfig(gamma, k, model))
	if err != nil {
		return err
	}

	var sink *obs.JSONL
	if eventsPath != "" {
		f, err := os.Create(eventsPath)
		if err != nil {
			return err
		}
		bw := bufio.NewWriter(f)
		defer func() {
			// The event stream is the run's durable artifact: a dropped
			// flush or close error would silently truncate it, so both
			// join the function result.
			if ferr := bw.Flush(); err == nil && ferr != nil {
				err = fmt.Errorf("writing %s: %w", eventsPath, ferr)
			}
			if cerr := f.Close(); err == nil && cerr != nil {
				err = fmt.Errorf("writing %s: %w", eventsPath, cerr)
			}
		}()
		sink = obs.NewJSONL(bw)
		cf.SetRecorder(obs.Stamp(clock.Real(), sink))
	}

	u, err := workload.NewUniform(1, 15)
	if err != nil {
		return err
	}
	src, err := workload.NewClientSource(model, u, seed)
	if err != nil {
		return err
	}
	rejected := 0
	for _, t := range workload.Take(src, tenants) {
		if err := cf.Place(t); err != nil {
			rejected++
		}
	}

	st := cf.Stats()
	fmt.Fprintf(out, "Traced run: %d uniform(1..15) tenants, seed %d\n", tenants, seed)
	fmt.Fprintf(out, "  first-stage=%d regular=%d tiny=%d rejected=%d servers=%d\n",
		st.FirstStageTenants, st.RegularTenants, st.TinyTenants, rejected,
		cf.Placement().NumServers())

	if sink != nil {
		if err := sink.Err(); err != nil {
			return fmt.Errorf("writing %s: %w", eventsPath, err)
		}
		fmt.Fprintf(out, "  %d events -> %s\n", sink.Count(), eventsPath)
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		werr := trace.Write(f, cf.Placement())
		cerr := f.Close()
		if werr != nil {
			return fmt.Errorf("writing %s: %w", tracePath, werr)
		}
		if cerr != nil {
			return fmt.Errorf("writing %s: %w", tracePath, cerr)
		}
		fmt.Fprintf(out, "  snapshot -> %s\n", tracePath)
	}
	return nil
}
