// Command cubefit-sim regenerates the paper's large-scale consolidation
// results: Figure 6 (percentage server savings of CubeFit over RFI across
// tenant distributions, with 95% confidence intervals) and Table I (yearly
// dollar savings for the uniform and zipfian system workloads).
//
// Usage:
//
//	cubefit-sim [-tenants 50000] [-runs 10] [-k 10] [-gamma 2] [-mu 0.85]
//	            [-seed 1] [-table1] [-quick]
//
// Without flags it runs the full paper configuration (10 runs × 50,000
// tenants × 11 distributions), which takes a few minutes; -quick reduces
// the scale for a fast smoke run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"cubefit/internal/core"
	"cubefit/internal/costs"
	"cubefit/internal/report"
	"cubefit/internal/rfi"
	"cubefit/internal/sim"
	"cubefit/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cubefit-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cubefit-sim", flag.ContinueOnError)
	var (
		tenants = fs.Int("tenants", 50000, "tenants per run")
		runs    = fs.Int("runs", 10, "independent runs per distribution")
		k       = fs.Int("k", 10, "CubeFit classes (paper: 10 for simulations)")
		gamma   = fs.Int("gamma", 2, "replicas per tenant")
		mu      = fs.Float64("mu", rfi.DefaultMu, "RFI interleaving parameter")
		seed    = fs.Uint64("seed", 1, "master random seed")
		table1  = fs.Bool("table1", false, "print only Table I (uniform 1..15 and zipf(3))")
		quick   = fs.Bool("quick", false, "reduced scale (2000 tenants, 3 runs)")
		timing  = fs.Bool("timing", false, "also measure placement wall-clock time per algorithm")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *quick {
		*tenants, *runs = 2000, 3
	}

	model := workload.DefaultLoadModel()
	cubeFactory := sim.CubeFitFactory(core.Config{Gamma: *gamma, K: *k}, &model)
	rfiFactory := sim.RFIFactory(rfi.Config{Gamma: *gamma, Mu: *mu})

	dists, err := sim.DefaultSweep()
	if err != nil {
		return err
	}
	if *table1 {
		dists = dists[:0]
		u, err := workload.NewUniform(1, 15)
		if err != nil {
			return err
		}
		z, err := workload.NewZipf(3, workload.MaxClientsPerServer)
		if err != nil {
			return err
		}
		dists = append(dists, u, z)
	}

	fmt.Fprintf(out, "Consolidation simulation: %s vs %s, %d tenants × %d runs\n\n",
		cubeFactory.Name, rfiFactory.Name, *tenants, *runs)

	var results []sim.ConsolidationResult
	for _, dist := range dists {
		spec := sim.ConsolidationSpec{
			Tenants: *tenants,
			Runs:    *runs,
			Seed:    *seed,
			Model:   model,
			Dist:    dist,
		}
		res, err := sim.RunConsolidation(spec, cubeFactory, rfiFactory)
		if err != nil {
			return err
		}
		results = append(results, res)
		fmt.Fprintf(out, "  %-22s rfi=%6.0f  cubefit=%6.0f  savings=%5.1f%% ±%.1f\n",
			res.Distribution, res.B.Servers.Mean, res.A.Servers.Mean,
			res.SavingsPct.Mean, res.SavingsPct.Half)
	}
	fmt.Fprintln(out)

	if !*table1 {
		// Figure 6: savings bar chart.
		bars := make([]report.Bar, 0, len(results))
		for _, r := range results {
			bars = append(bars, report.Bar{
				Label: r.Distribution,
				Value: r.SavingsPct.Mean,
				Err:   r.SavingsPct.Half,
			})
		}
		if err := report.BarChart(out, "Figure 6: % server savings of CubeFit over RFI (95% CI)", "%", 30, bars); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	// Table I for the two system distributions (when present in the sweep).
	tb := report.NewTable("Distribution", "RFI Servers", "CubeFit Saved", "Dollar Savings")
	model2 := costs.DefaultModel()
	printed := false
	for _, r := range results {
		if !*table1 && r.Distribution != "uniform(1..15)" && r.Distribution != "zipf(s=3, 1..52)" {
			continue
		}
		row, err := sim.TableI(r, model2)
		if err != nil {
			return err
		}
		tb.AddRow(row.Distribution,
			fmt.Sprintf("%d", row.BaselineServers),
			fmt.Sprintf("%d", row.SavedServers),
			report.Money(row.YearlySavings))
		printed = true
	}
	if printed {
		fmt.Fprintln(out, "Table I: yearly cost savings of CubeFit over RFI")
		if err := tb.Render(out); err != nil {
			return err
		}
	}

	if *timing {
		u, err := workload.NewUniform(1, 15)
		if err != nil {
			return err
		}
		src, err := workload.NewClientSource(model, u, *seed)
		if err != nil {
			return err
		}
		ts := workload.Take(src, *tenants)
		fmt.Fprintf(out, "\nPlacement time for %d uniform(1..15) tenants:\n", *tenants)
		for _, f := range []sim.Factory{cubeFactory, rfiFactory} {
			res, err := sim.MeasureTiming(f, ts)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "  %-22s total %v  (%v/tenant, %d servers)\n",
				res.Algorithm, res.Total.Round(time.Millisecond),
				res.PerTenant.Round(time.Microsecond), res.Servers)
		}
	}
	return nil
}
