package main

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"cubefit/internal/core"
	"cubefit/internal/obs"
	"cubefit/internal/packing"
	"cubefit/internal/trace"
	"cubefit/internal/workload"
)

// TestTracedRunRoundTrip is the PR's acceptance check: a traced run's
// JSONL log, replayed offline, must reconstruct for every admitted tenant
// the exact decision path — the same per-path totals core.Stats reports,
// and for cube placements the class, counter digits, and slot — and the
// same replica servers the final snapshot holds.
func TestTracedRunRoundTrip(t *testing.T) {
	dir := t.TempDir()
	eventsPath := filepath.Join(dir, "events.jsonl")
	tracePath := filepath.Join(dir, "placement.json")

	const tenants, seed = 600, 21
	var out bytes.Buffer
	if err := run([]string{
		"-events", eventsPath, "-trace", tracePath,
		"-tenants", "600", "-seed", "21",
	}, &out); err != nil {
		t.Fatalf("traced run: %v\n%s", err, out.String())
	}

	ef, err := os.Open(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	events, err := obs.ReadJSONL(ef)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	snap, err := trace.Read(sf)
	if err != nil {
		t.Fatal(err)
	}

	// Re-run the identical configuration and tenant sequence; its Stats
	// are the ground truth the log must reproduce.
	model := workload.DefaultLoadModel()
	cf, err := core.New(tracedConfig(2, 10, model))
	if err != nil {
		t.Fatal(err)
	}
	u, err := workload.NewUniform(1, 15)
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewClientSource(model, u, seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range workload.Take(src, tenants) {
		if err := cf.Place(tn); err != nil {
			t.Fatalf("reference Place(%d): %v", tn.ID, err)
		}
	}
	st := cf.Stats()

	ds := obs.Decisions(events)
	if len(ds) != tenants {
		t.Fatalf("reconstructed %d decisions, want %d", len(ds), tenants)
	}
	counts := obs.CountPaths(ds)
	if counts[core.AdmitFirstStage.String()] != st.FirstStageTenants ||
		counts[core.AdmitRegular.String()] != st.RegularTenants ||
		counts[core.AdmitTiny.String()] != st.TinyTenants {
		t.Errorf("log path counts %v, engine stats %+v", counts, st)
	}

	// Per-tenant exact path against the reference run and the snapshot.
	snapHosts := make(map[int][]int)
	for _, s := range snap.Servers {
		for _, r := range s.Replicas {
			snapHosts[r.Tenant] = append(snapHosts[r.Tenant], s.ID)
		}
	}
	for _, d := range ds {
		refHosts := cf.Placement().TenantHosts(packing.TenantID(d.Tenant))
		logHosts := make([]int, 0, len(d.Replicas))
		for _, r := range d.Replicas {
			logHosts = append(logHosts, r.Server)
		}
		for name, hosts := range map[string][]int{
			"reference run": refHosts, "snapshot": snapHosts[d.Tenant],
		} {
			a := append([]int(nil), logHosts...)
			b := append([]int(nil), hosts...)
			sort.Ints(a)
			sort.Ints(b)
			if len(a) != len(b) {
				t.Fatalf("tenant %d: log has %d replicas, %s has %d",
					d.Tenant, len(a), name, len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("tenant %d: log servers %v, %s servers %v",
						d.Tenant, a, name, b)
				}
			}
		}
		if d.Path == core.AdmitRegular.String() {
			if d.Class == obs.Unset || d.Counter == obs.Unset || len(d.Digits) == 0 {
				t.Fatalf("tenant %d: regular decision missing cube address: %+v", d.Tenant, d)
			}
			for _, r := range d.Replicas {
				if r.Slot == obs.Unset {
					t.Fatalf("tenant %d: cube replica missing slot", d.Tenant)
				}
			}
		}
	}
}

func TestTracedRunOutput(t *testing.T) {
	dir := t.TempDir()
	eventsPath := filepath.Join(dir, "ev.jsonl")
	var out bytes.Buffer
	if err := run([]string{"-events", eventsPath, "-tenants", "50"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Traced run: 50") {
		t.Errorf("summary missing: %s", out.String())
	}
	if !strings.Contains(out.String(), eventsPath) {
		t.Errorf("events path not reported: %s", out.String())
	}
}
