package main

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"cubefit/internal/core"
	"cubefit/internal/headroom"
	"cubefit/internal/rfi"
	"cubefit/internal/workload"
)

// runHeadroomCurves drives CubeFit and RFI over the same deterministic
// uniform(1..15) arrival sequence with an incremental headroom auditor
// attached to each, and writes the per-arrival safety-margin curves as CSV
// to path: after every admission, the minimum worst-case failover slack of
// each engine's placement. The curves contrast how much robustness margin
// CubeFit's invariant keeps versus RFI's single-failure interleaving as
// the cluster fills.
func runHeadroomCurves(out io.Writer, path string, tenants, gamma, k int, mu float64, seed uint64) (err error) {
	model := workload.DefaultLoadModel()
	cf, err := core.New(tracedConfig(gamma, k, model))
	if err != nil {
		return err
	}
	ri, err := rfi.New(rfi.Config{Gamma: gamma, Mu: mu})
	if err != nil {
		return err
	}
	cubeAudit := headroom.New(cf.Placement(), 0)
	cf.SetRecorder(cubeAudit)
	rfiAudit := headroom.New(ri.Placement(), 0)
	ri.SetRecorder(rfiAudit)

	u, err := workload.NewUniform(1, 15)
	if err != nil {
		return err
	}
	src, err := workload.NewClientSource(model, u, seed)
	if err != nil {
		return err
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	defer func() {
		// The CSV is the run's durable artifact: a dropped flush or close
		// error would silently truncate it, so both join the result.
		if ferr := w.Flush(); err == nil && ferr != nil {
			err = fmt.Errorf("writing %s: %w", path, ferr)
		}
		if cerr := f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("writing %s: %w", path, cerr)
		}
	}()
	if _, err := fmt.Fprintln(w,
		"arrival,tenant,load,cubefit_min_slack,cubefit_servers,rfi_min_slack,rfi_servers"); err != nil {
		return err
	}

	cubeTrough, rfiTrough := 1.0, 1.0
	for i, t := range workload.Take(src, tenants) {
		// Rejections still shift headroom (rolled-back admissions may have
		// opened servers), so sample unconditionally.
		_ = cf.Place(t)
		_ = ri.Place(t)
		cubeMin, _ := cubeAudit.Min()
		rfiMin, _ := rfiAudit.Min()
		if cubeMin.Slack < cubeTrough {
			cubeTrough = cubeMin.Slack
		}
		if rfiMin.Slack < rfiTrough {
			rfiTrough = rfiMin.Slack
		}
		if _, err := fmt.Fprintf(w, "%d,%d,%.6f,%.6f,%d,%.6f,%d\n",
			i+1, int(t.ID), t.Load,
			cubeMin.Slack, cf.Placement().NumServers(),
			rfiMin.Slack, ri.Placement().NumServers()); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}

	cubeRep := cubeAudit.Report()
	rfiRep := rfiAudit.Report()
	fmt.Fprintf(out, "Headroom curves: %d uniform(1..15) tenants, seed %d -> %s\n", tenants, seed, path)
	fmt.Fprintf(out, "  %-22s final min %.4f (p50 %.4f, trough %.4f, %d servers)\n",
		cf.Name(), cubeRep.MinSlack, cubeRep.P50Slack, cubeTrough, cf.Placement().NumServers())
	fmt.Fprintf(out, "  %-22s final min %.4f (p50 %.4f, trough %.4f, %d servers)\n",
		ri.Name(), rfiRep.MinSlack, rfiRep.P50Slack, rfiTrough, ri.Placement().NumServers())
	return nil
}
