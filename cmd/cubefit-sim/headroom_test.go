package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"cubefit/internal/packing"
)

func TestHeadroomCurves(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "curves.csv")
	const tenants = 250

	var out bytes.Buffer
	if err := run([]string{"-headroom", csvPath, "-tenants", strconv.Itoa(tenants), "-seed", "9"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"Headroom curves:", "cubefit(", "rfi(", "final min", "trough"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}

	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "arrival,tenant,load,cubefit_min_slack,cubefit_servers,rfi_min_slack,rfi_servers" {
		t.Fatalf("unexpected CSV header %q", lines[0])
	}
	if len(lines) != tenants+1 {
		t.Fatalf("expected %d CSV lines, got %d", tenants+1, len(lines))
	}
	for i, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != 7 {
			t.Fatalf("row %d has %d fields: %q", i+1, len(fields), line)
		}
		arrival, err := strconv.Atoi(fields[0])
		if err != nil || arrival != i+1 {
			t.Fatalf("row %d arrival = %q", i+1, fields[0])
		}
		// CubeFit guarantees tolerance of γ−1 simultaneous failures, so
		// its minimum worst-case slack never goes meaningfully negative.
		slack, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			t.Fatalf("row %d cubefit slack %q: %v", i+1, fields[3], err)
		}
		if slack < -packing.CapacityEps || slack > 1 {
			t.Fatalf("row %d cubefit min slack %v out of range", i+1, slack)
		}
	}
}
