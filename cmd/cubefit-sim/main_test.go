package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestQuickRun(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-quick", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"Figure 6",
		"Table I",
		"uniform(1..15)",
		"zipf(s=3, 1..52)",
		"Dollar Savings",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

func TestTable1Only(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table1", "-tenants", "1500", "-runs", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if strings.Contains(text, "Figure 6") {
		t.Fatalf("-table1 printed the Figure 6 chart:\n%s", text)
	}
	if !strings.Contains(text, "Table I") {
		t.Fatalf("-table1 missing the table:\n%s", text)
	}
	// Only the two system distributions appear.
	if strings.Contains(text, "uniform(1..25)") {
		t.Fatalf("-table1 ran the full sweep:\n%s", text)
	}
}

func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-tenants", "nope"}, &out); err == nil {
		t.Fatal("invalid flag accepted")
	}
}

func TestGamma3Config(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-quick", "-gamma", "3", "-k", "5", "-table1",
		"-tenants", "800", "-runs", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "γ=3") {
		t.Fatalf("γ=3 not reflected in output:\n%s", out.String())
	}
}

// TestWorkersParity asserts that the parallel trial runner reproduces the
// serial consolidation report byte-for-byte at a fixed seed.
func TestWorkersParity(t *testing.T) {
	base := []string{"-tenants", "300", "-runs", "4", "-table1", "-seed", "9"}
	var serial bytes.Buffer
	if err := run(base, &serial); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"2", "8"} {
		var parallel bytes.Buffer
		if err := run(append([]string{"-workers", w}, base...), &parallel); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(parallel.Bytes(), serial.Bytes()) {
			t.Fatalf("-workers %s output differs from serial:\n%s\nvs\n%s", w, parallel.String(), serial.String())
		}
	}
}
