// Command cubefit-server runs the placement controller as an HTTP service.
//
// Usage:
//
//	cubefit-server [-addr :8080] [-gamma 2] [-k 10] [-redline 0.05] [-wal path] [-wal-segments 1]
//	               [-trace] [-spans path] [-slo-latency-p99 100ms] [-health-interval 1s]
//	               [-health-log path] [-pprof] [-drain 10s]
//
// Endpoints:
//
//	POST   /v1/tenants       {"id":1,"load":0.3} or {"id":1,"clients":8}
//	POST   /v1/tenants:batch {"tenants":[...]} batched admission
//	GET    /v1/tenants/{id}
//	DELETE /v1/tenants/{id}
//	GET    /v1/placement
//	GET    /v1/servers
//	GET    /v1/stats
//	GET    /v1/validate
//	POST   /v1/drill         {"failures":2}
//	POST   /v1/repack
//	GET    /v1/healthz
//	GET    /healthz          liveness: 200 while the process serves, verdict in the body
//	GET    /readyz           readiness: 503 while health is critical or the server drains
//	GET    /metrics          Prometheus text exposition
//	GET    /debug/events     last decision events [?n=200]
//	GET    /debug/headroom   worst-case failover slack per server [?worst=n]
//	GET    /debug/headroom/servers/{id}  one server's worst set, attributed
//	GET    /debug/pipeline   admission stage percentiles, queue state, recent group commits
//	GET    /debug/health     full health verdict, firing rules, rule configuration
//	GET    /debug/timeline   sampled metric time-series [?series=&window=]
//	GET    /explain/tenants/{id}  reconstructed decision path + failover
//	/debug/pprof/*           with -pprof only
//
// Operations: the server applies Read/Write/Idle timeouts, logs every
// request as a structured (slog) line, and exports per-route request
// counts, status classes, latency histograms, and admission-outcome
// counters at GET /metrics. The engine's decision flight recorder
// (internal/obs) feeds GET /debug/events and GET /explain/tenants/{id}
// as well as the engine gauges and per-path admission latency
// histograms on /metrics. The same stream drives the incremental
// robustness headroom auditor: GET /debug/headroom reports every server's
// worst-case failover slack and arg-max failure set, and the
// cubefit_headroom_* gauges track the minimum/median slack plus the
// servers below the -redline threshold.
//
// Tracing: the admission pipeline stamps every request with a per-stage
// span (queue wait, placement, WAL stage, group-commit fsync, ack) and
// exports stage histograms plus queue gauges on /metrics and live
// percentiles on GET /debug/pipeline. -trace=false disables the span
// layer entirely; -spans path additionally streams every finished span
// as JSONL for offline analysis with `cubefit-inspect latency`.
//
// Health: a telemetry monitor (internal/telemetry) samples the metric
// registry every -health-interval into bounded ring time-series and
// evaluates the SLO rules each tick: multi-window burn rate on the
// admission latency histograms against -slo-latency-p99, the headroom
// red-line floor (-redline) with erosion projection, queue saturation
// and oldest-wait bounds, sticky-WAL-error detection, and a placer-stall
// watchdog. The rules drive a healthy/degraded/critical state machine
// with de-escalation hysteresis: GET /healthz stays 200 while the
// process serves (liveness), GET /readyz answers 503 while the state is
// critical or the server is draining, and GET /debug/health and
// GET /debug/timeline expose the verdict and the underlying series.
// -health-log streams every tick's samples and every state transition as
// JSONL for offline replay with `cubefit-inspect health`.
//
// Durability: with -wal the decision stream doubles as a write-ahead log.
// At boot the server replays the log into a fresh engine, cross-checks the
// rebuilt placement against an independent event-level replay and the
// robustness validator, and refuses to serve from a log that does not
// replay cleanly. Admissions and departures are group-committed (flushed
// and fsynced) to the log before they are acked; if the log cannot commit,
// mutations fail closed with 503. With -wal-segments N (N ≥ 2) the log is
// sharded over N append-only segment files (<path>.seg0 … segN-1): each
// coalesced admission batch is sealed into one segment under a monotone
// commit-sequence record and fsynced on a background goroutine, so
// independent batches commit in parallel while acks are still released
// strictly in seal order; recovery merge-replays the segments in
// commit-sequence order and stops at the first gap, truncating each
// segment back to its recovered prefix. On SIGINT/SIGTERM the server marks
// itself draining (GET /readyz flips to 503 so load balancers stop
// routing new traffic), stops accepting new connections, drains
// in-flight requests for up to -drain, then drains the admission
// pipeline and performs the WAL's final commit before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cubefit/internal/api"
	"cubefit/internal/core"
	"cubefit/internal/headroom"
	"cubefit/internal/metrics"
	"cubefit/internal/obs"
	"cubefit/internal/recovery"
	"cubefit/internal/telemetry"
	"cubefit/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cubefit-server:", err)
		os.Exit(1)
	}
}

// options carries the operational settings parsed from flags alongside
// the algorithm configuration and the controller owning the admission
// pipeline (closed after the HTTP drain completes).
type options struct {
	cfg   core.Config
	drain time.Duration
	pprof bool
	ctrl  *api.Controller
	// spanLog/spanSink are set with -spans: the JSONL span export file,
	// closed (with its sticky encode error surfaced) after the controller
	// drains so every finished span reaches the file.
	spanLog  *os.File
	spanSink *obs.SpanJSONL
	// healthLog/healthSink are set with -health-log: the JSONL health
	// export (config, per-tick samples, state transitions), closed after
	// the controller stops its sampling loop.
	healthLog  *os.File
	healthSink *obs.HealthJSONL
}

func run(args []string) error {
	srv, opts, err := newServer(args)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", srv.Addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	slog.Info("cubefit-server listening",
		"addr", ln.Addr().String(), "gamma", opts.cfg.Gamma, "k", opts.cfg.K,
		"pprof", opts.pprof, "drain", opts.drain)
	err = serve(ctx, ln, srv, opts.ctrl, opts.drain)
	// Once no handler can enqueue new work, drain the admission pipeline
	// and commit the write-ahead log's final batch.
	if cerr := opts.ctrl.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("closing admission pipeline: %w", cerr)
	}
	if opts.spanLog != nil {
		if serr := opts.spanSink.Err(); serr != nil && err == nil {
			err = fmt.Errorf("span export: %w", serr)
		}
		if cerr := opts.spanLog.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("closing span log: %w", cerr)
		}
	}
	if opts.healthLog != nil {
		if serr := opts.healthSink.Err(); serr != nil && err == nil {
			err = fmt.Errorf("health export: %w", serr)
		}
		if cerr := opts.healthLog.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("closing health log: %w", cerr)
		}
	}
	return err
}

// serve runs srv on ln until it fails or ctx is cancelled, then shuts
// down gracefully: readiness flips to 503 first so load balancers stop
// routing, the listener closes, and in-flight requests get up to drain
// to complete.
func serve(ctx context.Context, ln net.Listener, srv *http.Server, ctrl *api.Controller, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		slog.Info("shutting down", "drain", drain)
		// Readiness-aware drain: /readyz answers 503 from here on while
		// the in-flight requests (and any probe hitting /healthz) still
		// complete against the live handler.
		ctrl.SetDraining(true)
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return fmt.Errorf("drain incomplete: %w", err)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		slog.Info("shutdown complete")
		return nil
	}
}

// newServer parses flags and builds the HTTP server without starting it.
func newServer(args []string) (*http.Server, options, error) {
	fs := flag.NewFlagSet("cubefit-server", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		gamma     = fs.Int("gamma", 2, "replicas per tenant")
		k         = fs.Int("k", 10, "CubeFit classes")
		withPprof = fs.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		drain     = fs.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
		redline   = fs.Float64("redline", headroom.DefaultRedLine,
			"headroom red-line: slack below this counts a server in cubefit_headroom_below_redline")
		walPath     = fs.String("wal", "", "write-ahead log path: replay at boot, group-commit admissions before ack")
		walSegments = fs.Int("wal-segments", 1,
			"shard the write-ahead log over this many segment files (<path>.seg0..segN-1) with parallel group commits; 1 keeps the single-file log")
		trace  = fs.Bool("trace", true, "trace admission pipeline stages (/debug/pipeline, cubefit_pipeline_* metrics)")
		spans  = fs.String("spans", "", "stream finished admission spans to this JSONL file (requires tracing)")
		sloP99 = fs.Duration("slo-latency-p99", telemetry.DefaultObjective,
			"admission latency objective: requests at or under it are \"good\" for the burn-rate rules")
		healthInterval = fs.Duration("health-interval", telemetry.DefaultInterval,
			"health sampling period (/healthz, /readyz, /debug/health, /debug/timeline)")
		healthLog = fs.String("health-log", "",
			"stream health samples and state transitions to this JSONL file (replay with `cubefit-inspect health`)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, options{}, err
	}
	if *spans != "" && !*trace {
		return nil, options{}, fmt.Errorf("-spans requires tracing; drop -trace=false")
	}
	if *sloP99 <= 0 {
		return nil, options{}, fmt.Errorf("-slo-latency-p99 must be positive, got %v", *sloP99)
	}
	if *healthInterval <= 0 {
		return nil, options{}, fmt.Errorf("-health-interval must be positive, got %v", *healthInterval)
	}
	opts := options{cfg: core.Config{Gamma: *gamma, K: *k}, drain: *drain, pprof: *withPprof}
	var (
		cf       *core.CubeFit
		err      error
		ctrlOpts []api.Option
	)
	if *walSegments < 1 {
		return nil, options{}, fmt.Errorf("-wal-segments must be at least 1, got %d", *walSegments)
	}
	if *walSegments > 1 && *walPath == "" {
		return nil, options{}, fmt.Errorf("-wal-segments requires -wal")
	}
	switch {
	case *walPath != "" && *walSegments > 1:
		var rstats recovery.Stats
		var shard recovery.ShardRecovery
		cf, rstats, shard, err = recovery.FromSegments(*walPath, *walSegments, opts.cfg)
		if err != nil {
			return nil, options{}, fmt.Errorf("wal recovery: %w", err)
		}
		slog.Info("sharded wal recovered", "path", *walPath, "segments", *walSegments,
			"events", rstats.Events, "admitted", rstats.Admitted,
			"rejected", rstats.Rejected, "departed", rstats.Departed,
			"dropped", rstats.Dropped, "droppedBatches", shard.DroppedBatches,
			"torn", rstats.Torn, "nextSeq", shard.NextSeq,
			"tenants", cf.Placement().NumTenants())
		// Cut each segment back to its recovered prefix: uncommitted
		// tails, torn records, and batches stranded past a commit-sequence
		// gap were never acked, and fresh records must not append after
		// them.
		for i := 0; i < *walSegments; i++ {
			segPath := obs.SegmentPath(*walPath, i)
			if _, serr := os.Stat(segPath); errors.Is(serr, os.ErrNotExist) {
				continue
			}
			if trimmed, terr := obs.TruncateWAL(segPath, shard.CommittedBytes[i]); terr != nil {
				return nil, options{}, fmt.Errorf("wal truncate segment %d: %w", i, terr)
			} else if trimmed > 0 {
				slog.Info("wal uncommitted suffix truncated", "path", segPath, "bytes", trimmed)
			}
		}
		swal, werr := obs.OpenShardedWAL(*walPath, *walSegments, shard.NextSeq)
		if werr != nil {
			return nil, options{}, fmt.Errorf("wal open: %w", werr)
		}
		ctrlOpts = append(ctrlOpts, api.WithWAL(swal))
	case *walPath != "":
		var rstats recovery.Stats
		cf, rstats, err = recovery.FromFile(*walPath, opts.cfg)
		if err != nil {
			return nil, options{}, fmt.Errorf("wal recovery: %w", err)
		}
		slog.Info("wal recovered", "path", *walPath,
			"events", rstats.Events, "admitted", rstats.Admitted,
			"rejected", rstats.Rejected, "departed", rstats.Departed,
			"dropped", rstats.Dropped, "torn", rstats.Torn,
			"tenants", cf.Placement().NumTenants())
		// Cut the uncommitted suffix before appending. Complete event
		// lines past the last committed admit/reject/depart (left by a
		// bufio auto-flush that outran its group commit) and any torn
		// partial record were dropped by recovery; left in the file, fresh
		// records would append after them and the next boot would read an
		// interleaved, unreplayable log.
		if trimmed, terr := obs.TruncateWAL(*walPath, rstats.CommittedBytes); terr != nil {
			return nil, options{}, fmt.Errorf("wal truncate: %w", terr)
		} else if trimmed > 0 {
			slog.Info("wal uncommitted suffix truncated", "path", *walPath, "bytes", trimmed)
		}
		wal, werr := obs.OpenWAL(*walPath)
		if werr != nil {
			return nil, options{}, fmt.Errorf("wal open: %w", werr)
		}
		ctrlOpts = append(ctrlOpts, api.WithWAL(wal))
	default:
		cf, err = core.New(opts.cfg)
		if err != nil {
			return nil, options{}, err
		}
	}
	if !*trace {
		ctrlOpts = append(ctrlOpts, api.WithoutSpanTracing())
	}
	if *spans != "" {
		f, ferr := os.Create(*spans)
		if ferr != nil {
			return nil, options{}, fmt.Errorf("span log: %w", ferr)
		}
		opts.spanLog = f
		opts.spanSink = obs.NewSpanJSONL(f)
		ctrlOpts = append(ctrlOpts, api.WithSpanSink(opts.spanSink))
	}
	// Health monitor: defaults with the deployment's objective, sampling
	// period, and headroom red line folded in. The queue capacity stays 0
	// here — the controller wires its admission queue's real bound.
	hcfg := telemetry.DefaultConfig()
	hcfg.Interval = *healthInterval
	hcfg.Burn.Objective = *sloP99
	hcfg.Headroom.Floor = *redline
	ctrlOpts = append(ctrlOpts, api.WithHealthConfig(hcfg), api.WithHealthLoop())
	if *healthLog != "" {
		f, ferr := os.Create(*healthLog)
		if ferr != nil {
			return nil, options{}, errors.Join(fmt.Errorf("health log: %w", ferr), closeLogs(&opts))
		}
		opts.healthLog = f
		opts.healthSink = obs.NewHealthJSONL(f)
		ctrlOpts = append(ctrlOpts, api.WithHealthLog(opts.healthSink))
	}
	ctrl, err := api.NewController(cf, workload.DefaultLoadModel(), ctrlOpts...)
	if err != nil {
		return nil, options{}, errors.Join(err, closeLogs(&opts))
	}
	opts.ctrl = ctrl
	ctrl.SetHeadroomRedLine(*redline)
	mux := http.NewServeMux()
	mux.Handle("/", ctrl.Handler())
	if opts.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return &http.Server{
		Addr:    *addr,
		Handler: requestLogging(slog.Default(), mux),
		// Placement operations are in-memory and fast; generous write and
		// idle timeouts cover large /v1/placement snapshots and keep-alive
		// reuse while still bounding stuck connections.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}, opts, nil
}

// closeLogs closes whichever export files construction opened, so a
// refused boot does not leak descriptors.
func closeLogs(opts *options) error {
	var err error
	if opts.spanLog != nil {
		err = errors.Join(err, opts.spanLog.Close())
	}
	if opts.healthLog != nil {
		err = errors.Join(err, opts.healthLog.Close())
	}
	return err
}

// requestLogging logs one structured line per request. The wrapper
// preserves http.Flusher/io.ReaderFrom so pprof streaming and sendfile
// keep working through it.
func requestLogging(l *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ww, rec := metrics.WrapResponseWriter(w)
		next.ServeHTTP(ww, r)
		l.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.Code,
			"duration", time.Since(start),
			"remote", r.RemoteAddr)
	})
}
