// Command cubefit-server runs the placement controller as an HTTP service.
//
// Usage:
//
//	cubefit-server [-addr :8080] [-gamma 2] [-k 10]
//
// Endpoints:
//
//	POST   /v1/tenants       {"id":1,"load":0.3} or {"id":1,"clients":8}
//	GET    /v1/tenants/{id}
//	DELETE /v1/tenants/{id}
//	GET    /v1/placement
//	GET    /v1/servers
//	GET    /v1/stats
//	GET    /v1/validate
//	POST   /v1/drill         {"failures":2}
//	GET    /v1/healthz
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"cubefit/internal/api"
	"cubefit/internal/core"
	"cubefit/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cubefit-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	srv, cfg, err := newServer(args)
	if err != nil {
		return err
	}
	log.Printf("cubefit-server listening on %s (γ=%d, K=%d)", srv.Addr, cfg.Gamma, cfg.K)
	return srv.ListenAndServe()
}

// newServer parses flags and builds the HTTP server without starting it.
func newServer(args []string) (*http.Server, core.Config, error) {
	fs := flag.NewFlagSet("cubefit-server", flag.ContinueOnError)
	var (
		addr  = fs.String("addr", ":8080", "listen address")
		gamma = fs.Int("gamma", 2, "replicas per tenant")
		k     = fs.Int("k", 10, "CubeFit classes")
	)
	if err := fs.Parse(args); err != nil {
		return nil, core.Config{}, err
	}
	cfg := core.Config{Gamma: *gamma, K: *k}
	cf, err := core.New(cfg)
	if err != nil {
		return nil, core.Config{}, err
	}
	ctrl, err := api.NewController(cf, workload.DefaultLoadModel())
	if err != nil {
		return nil, core.Config{}, err
	}
	return &http.Server{
		Addr:              *addr,
		Handler:           ctrl.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}, cfg, nil
}
