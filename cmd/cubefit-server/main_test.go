package main

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestNewServerDefaults(t *testing.T) {
	srv, cfg, err := newServer(nil)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Addr != ":8080" || cfg.Gamma != 2 || cfg.K != 10 {
		t.Fatalf("defaults wrong: addr=%q cfg=%+v", srv.Addr, cfg)
	}
	// The handler must serve the health endpoint.
	ts := httptest.NewServer(srv.Handler)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestNewServerFlagErrors(t *testing.T) {
	if _, _, err := newServer([]string{"-gamma", "zero"}); err == nil {
		t.Fatal("invalid flag accepted")
	}
	if _, _, err := newServer([]string{"-gamma", "0"}); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, _, err := newServer([]string{"-k", "1"}); err == nil {
		t.Fatal("invalid K accepted")
	}
}

func TestNewServerCustomFlags(t *testing.T) {
	srv, cfg, err := newServer([]string{"-addr", ":9999", "-gamma", "3", "-k", "5"})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Addr != ":9999" || cfg.Gamma != 3 || cfg.K != 5 {
		t.Fatalf("flags not applied: addr=%q cfg=%+v", srv.Addr, cfg)
	}
	if !strings.HasPrefix(srv.Addr, ":") {
		t.Fatalf("addr %q", srv.Addr)
	}
}
