package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cubefit/internal/api"
	"cubefit/internal/core"
	"cubefit/internal/obs"
	"cubefit/internal/telemetry"
	"cubefit/internal/workload"
)

// newTestController builds a bare controller for serve-level tests that
// only need the draining switch.
func newTestController(t *testing.T) *api.Controller {
	t.Helper()
	cf, err := core.New(core.Config{Gamma: 2, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := api.NewController(cf, workload.DefaultLoadModel())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctrl.Close() })
	return ctrl
}

func TestNewServerDefaults(t *testing.T) {
	srv, opts, err := newServer(nil)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Addr != ":8080" || opts.cfg.Gamma != 2 || opts.cfg.K != 10 {
		t.Fatalf("defaults wrong: addr=%q opts=%+v", srv.Addr, opts)
	}
	if opts.pprof || opts.drain != 10*time.Second {
		t.Fatalf("operational defaults wrong: %+v", opts)
	}
	if srv.ReadTimeout == 0 || srv.WriteTimeout == 0 || srv.IdleTimeout == 0 || srv.ReadHeaderTimeout == 0 {
		t.Fatalf("timeouts not set: %+v", srv)
	}
	// The handler must serve the health endpoint.
	ts := httptest.NewServer(srv.Handler)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	// Metrics are exposed; pprof is off by default.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != 200 {
		t.Fatalf("metrics status %d", mresp.StatusCode)
	}
	presp, err := ts.Client().Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode == 200 {
		t.Fatal("pprof served without -pprof")
	}
}

func TestNewServerFlagErrors(t *testing.T) {
	if _, _, err := newServer([]string{"-gamma", "zero"}); err == nil {
		t.Fatal("invalid flag accepted")
	}
	if _, _, err := newServer([]string{"-gamma", "0"}); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, _, err := newServer([]string{"-k", "1"}); err == nil {
		t.Fatal("invalid K accepted")
	}
	if _, _, err := newServer([]string{"-trace=false", "-spans", "x.jsonl"}); err == nil {
		t.Fatal("-spans without tracing accepted")
	}
	if _, _, err := newServer([]string{"-slo-latency-p99", "0s"}); err == nil {
		t.Fatal("zero SLO objective accepted")
	}
	if _, _, err := newServer([]string{"-health-interval", "-1s"}); err == nil {
		t.Fatal("negative health interval accepted")
	}
	if _, _, err := newServer([]string{"-wal", "w.jsonl", "-wal-segments", "0"}); err == nil {
		t.Fatal("zero -wal-segments accepted")
	}
	if _, _, err := newServer([]string{"-wal-segments", "2"}); err == nil {
		t.Fatal("-wal-segments without -wal accepted")
	}
}

// TestHealthFlags: the health endpoints are served out of the box, the
// SLO flags land in the effective rule configuration, and -health-log
// streams a replayable JSONL log through the run() teardown path.
func TestHealthFlags(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "health.jsonl")
	srv, opts, err := newServer([]string{
		"-slo-latency-p99", "250ms", "-health-interval", "100ms",
		"-redline", "0.1", "-health-log", logPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler)
	if body := getOK(t, ts, "/healthz"); !strings.Contains(body, "healthy") {
		t.Fatalf("/healthz body: %s", body)
	}
	if body := getOK(t, ts, "/readyz"); !strings.Contains(body, `"ready":true`) {
		t.Fatalf("/readyz body: %s", body)
	}
	var dbg struct {
		State  string `json:"state"`
		Config struct {
			Burn struct {
				ObjectiveNs int64 `json:"objectiveNs"`
			} `json:"burn"`
			Headroom struct {
				Floor float64 `json:"floor"`
			} `json:"headroom"`
			IntervalNs int64 `json:"intervalNs"`
		} `json:"config"`
	}
	if err := json.Unmarshal([]byte(getOK(t, ts, "/debug/health")), &dbg); err != nil {
		t.Fatal(err)
	}
	if got, want := time.Duration(dbg.Config.Burn.ObjectiveNs), 250*time.Millisecond; got != want {
		t.Fatalf("objective %v, want %v", got, want)
	}
	if got, want := time.Duration(dbg.Config.IntervalNs), 100*time.Millisecond; got != want {
		t.Fatalf("interval %v, want %v", got, want)
	}
	if dbg.Config.Headroom.Floor != 0.1 {
		t.Fatalf("headroom floor %v, want 0.1 (the -redline value)", dbg.Config.Headroom.Floor)
	}
	// Let the background loop take a few real ticks, then mirror run()'s
	// teardown and replay the log.
	time.Sleep(350 * time.Millisecond)
	ts.Close()
	if err := opts.ctrl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := opts.healthSink.Err(); err != nil {
		t.Fatal(err)
	}
	if err := opts.healthLog.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := obs.ReadHealthJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := telemetry.Replay(recs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ticks == 0 {
		t.Fatal("health log holds no sample records")
	}
	if res.Config.Burn.Objective != 250*time.Millisecond {
		t.Fatalf("replayed objective %v", res.Config.Burn.Objective)
	}
	if !res.ParityOK() {
		t.Fatalf("replay parity failed: replayed %+v, recorded %+v", res.Transitions, res.Recorded)
	}
}

// TestTraceFlag: tracing is on by default (pipeline endpoint + metrics
// live) and -trace=false removes both.
func TestTraceFlag(t *testing.T) {
	srv, opts, err := newServer(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer opts.ctrl.Close()
	ts := httptest.NewServer(srv.Handler)
	defer ts.Close()
	if body := getOK(t, ts, "/debug/pipeline"); !strings.Contains(body, `"tracing":true`) {
		t.Fatalf("/debug/pipeline body:\n%s", body)
	}
	if m := getOK(t, ts, "/metrics"); !strings.Contains(m, "cubefit_pipeline_queue_depth") {
		t.Fatalf("/metrics missing pipeline gauges:\n%s", m)
	}

	srvOff, optsOff, err := newServer([]string{"-trace=false"})
	if err != nil {
		t.Fatal(err)
	}
	defer optsOff.ctrl.Close()
	tsOff := httptest.NewServer(srvOff.Handler)
	defer tsOff.Close()
	resp, err := tsOff.Client().Get(tsOff.URL + "/debug/pipeline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("/debug/pipeline with -trace=false: status %d, want 404", resp.StatusCode)
	}
	if m := getOK(t, tsOff, "/metrics"); strings.Contains(m, "cubefit_pipeline_") {
		t.Fatal("-trace=false still exports pipeline metrics")
	}
}

// TestSpansFlag: -spans streams every finished admission span to the
// JSONL file, flushed and closed by the run() teardown path.
func TestSpansFlag(t *testing.T) {
	spansPath := filepath.Join(t.TempDir(), "spans.jsonl")
	srv, opts, err := newServer([]string{"-spans", spansPath})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler)
	for i := 0; i < 8; i++ {
		body := strings.NewReader(fmt.Sprintf(`{"id":%d,"load":0.1}`, i))
		resp, err := ts.Client().Post(ts.URL+"/v1/tenants", "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 201 {
			t.Fatalf("place %d: status %d", i, resp.StatusCode)
		}
	}
	ts.Close()
	// Mirror run()'s teardown: drain the pipeline, then surface the sink
	// state and close the file.
	if err := opts.ctrl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := opts.spanSink.Err(); err != nil {
		t.Fatal(err)
	}
	if err := opts.spanLog.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(spansPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans, err := obs.ReadSpanJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 8 {
		t.Fatalf("exported %d spans, want 8", len(spans))
	}
	for _, s := range spans {
		if s.Status != 201 || s.TotalNs() <= 0 {
			t.Fatalf("unexpected span: %+v", s)
		}
	}
}

func TestNewServerCustomFlags(t *testing.T) {
	srv, opts, err := newServer([]string{"-addr", ":9999", "-gamma", "3", "-k", "5", "-pprof", "-drain", "2s"})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Addr != ":9999" || opts.cfg.Gamma != 3 || opts.cfg.K != 5 {
		t.Fatalf("flags not applied: addr=%q opts=%+v", srv.Addr, opts)
	}
	if !opts.pprof || opts.drain != 2*time.Second {
		t.Fatalf("operational flags not applied: %+v", opts)
	}
	if !strings.HasPrefix(srv.Addr, ":") {
		t.Fatalf("addr %q", srv.Addr)
	}
	ts := httptest.NewServer(srv.Handler)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof status %d with -pprof", resp.StatusCode)
	}
}

// TestServeGracefulShutdown verifies that cancelling the run context
// drains an in-flight request to completion before serve returns.
func TestServeGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		close(started)
		time.Sleep(150 * time.Millisecond)
		w.Write([]byte("done"))
	})
	srv := &http.Server{Handler: mux}
	ctrl := newTestController(t)
	ctx, cancel := context.WithCancel(context.Background())

	var wg sync.WaitGroup
	var serveErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		serveErr = serve(ctx, ln, srv, ctrl, 5*time.Second)
	}()

	url := fmt.Sprintf("http://%s/slow", ln.Addr())
	var status int
	var reqErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(url)
		if err != nil {
			reqErr = err
			return
		}
		defer resp.Body.Close()
		status = resp.StatusCode
	}()

	// Trigger shutdown while the request is in flight.
	<-started
	cancel()
	wg.Wait()

	if serveErr != nil {
		t.Fatalf("serve: %v", serveErr)
	}
	if reqErr != nil {
		t.Fatalf("in-flight request failed during drain: %v", reqErr)
	}
	if status != 200 {
		t.Fatalf("in-flight status %d", status)
	}
	// The listener is closed: new connections must fail.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), 100*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestServeListenerError: serve surfaces a Serve failure that is not a
// graceful close.
func TestServeListenerError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close() // force Serve to fail immediately
	srv := &http.Server{Handler: http.NewServeMux()}
	if err := serve(context.Background(), ln, srv, newTestController(t), time.Second); err == nil {
		t.Fatal("closed listener did not surface an error")
	}
}

func TestRedLineFlag(t *testing.T) {
	srv, _, err := newServer([]string{"-redline", "0.2"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(strings.Builder)
	if _, err := io.Copy(buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cubefit_headroom_redline 0.2") {
		t.Fatalf("/metrics missing configured red line:\n%s", buf.String())
	}
	// The headroom route is live from the start (empty placement).
	hr, err := ts.Client().Get(ts.URL + "/debug/headroom")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != 200 {
		t.Fatalf("/debug/headroom status %d", hr.StatusCode)
	}
}

// TestWALBootCycle is the operator-level kill-restart drill: a server
// admits traffic into its WAL, "dies" (pipeline closed), and a second
// server booted with the same -wal serves the exact surviving state and
// keeps appending to the same log.
func TestWALBootCycle(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "wal.jsonl")
	args := []string{"-wal", walPath, "-gamma", "2", "-k", "10"}

	srv1, opts1, err := newServer(args)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler)
	for i := 0; i < 20; i++ {
		body := strings.NewReader(fmt.Sprintf(`{"id":%d,"clients":%d}`, i, 1+i%15))
		resp, err := ts1.Client().Post(ts1.URL+"/v1/tenants", "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 201 {
			t.Fatalf("place %d: status %d", i, resp.StatusCode)
		}
	}
	req, _ := http.NewRequest("DELETE", ts1.URL+"/v1/tenants/5", nil)
	resp, err := ts1.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 204 {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	snap1 := getOK(t, ts1, "/v1/placement")
	ts1.Close()
	if err := opts1.ctrl.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, opts2, err := newServer(args)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler)
	defer ts2.Close()
	defer opts2.ctrl.Close()
	if snap2 := getOK(t, ts2, "/v1/placement"); snap2 != snap1 {
		t.Fatalf("recovered placement differs:\nbefore: %s\nafter:  %s", snap1, snap2)
	}
	// The recovered server keeps admitting into the same log.
	presp, err := ts2.Client().Post(ts2.URL+"/v1/tenants", "application/json",
		strings.NewReader(`{"id":100,"load":0.25}`))
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != 201 {
		t.Fatalf("post-recovery admission status %d", presp.StatusCode)
	}
	if vresp := getOK(t, ts2, "/v1/validate"); !strings.Contains(vresp, "true") {
		t.Fatalf("recovered placement invalid: %s", vresp)
	}
}

// TestWALBootCycleAfterUncommittedSuffix is the crash-then-restart-twice
// regression: a crash can leave complete-but-uncommitted event lines in
// the log (a bufio auto-flush without its closing admit). The first boot
// must drop AND truncate them — if it only dropped them, its own appended
// records would land after the stale suffix and the second boot would
// read an interleaved log and refuse to start.
func TestWALBootCycleAfterUncommittedSuffix(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "wal.jsonl")
	args := []string{"-wal", walPath, "-gamma", "2", "-k", "10"}

	srv1, opts1, err := newServer(args)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler)
	for i := 0; i < 10; i++ {
		body := strings.NewReader(fmt.Sprintf(`{"id":%d,"load":0.2}`, i))
		resp, err := ts1.Client().Post(ts1.URL+"/v1/tenants", "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 201 {
			t.Fatalf("place %d: status %d", i, resp.StatusCode)
		}
	}
	ts1.Close()
	if err := opts1.ctrl.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash: an attempt and a partial placement reached the
	// file as complete lines, the closing admit never did.
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	open := obs.NewEvent(obs.KindAttempt)
	open.Tenant = 777
	open.Size = 0.4
	place := obs.NewEvent(obs.KindStage1Place)
	place.Tenant = 777
	place.Replica = 0
	place.Server = 0
	place.Size = 0.4
	enc := json.NewEncoder(f)
	for _, e := range []obs.Event{open, place} {
		if err := enc.Encode(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Boot 2 recovers (dropping the suffix) and keeps admitting.
	srv2, opts2, err := newServer(args)
	if err != nil {
		t.Fatalf("boot after crash: %v", err)
	}
	ts2 := httptest.NewServer(srv2.Handler)
	resp, err := ts2.Client().Post(ts2.URL+"/v1/tenants", "application/json",
		strings.NewReader(`{"id":100,"load":0.25}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 201 {
		t.Fatalf("post-recovery admission status %d", resp.StatusCode)
	}
	snap2 := getOK(t, ts2, "/v1/placement")
	ts2.Close()
	if err := opts2.ctrl.Close(); err != nil {
		t.Fatal(err)
	}

	// Boot 3 is the regression: the log must still replay cleanly after
	// boot 2 appended past the (now truncated) uncommitted suffix.
	srv3, opts3, err := newServer(args)
	if err != nil {
		t.Fatalf("second restart refused the log: %v", err)
	}
	ts3 := httptest.NewServer(srv3.Handler)
	defer ts3.Close()
	defer opts3.ctrl.Close()
	if snap3 := getOK(t, ts3, "/v1/placement"); snap3 != snap2 {
		t.Fatalf("recovered placement differs:\nbefore: %s\nafter:  %s", snap2, snap3)
	}
	if strings.Contains(snap2, "\"id\":777") {
		t.Fatal("uncommitted admission resurrected")
	}
}

// TestWALBootRefusesBadLog: a server must not serve from a log that does
// not replay cleanly.
func TestWALBootRefusesBadLog(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "wal.jsonl")
	if err := os.WriteFile(walPath, []byte("{\"kind\":\"admit\",\"tenant\":1}\nnot json\n{\"kind\":\"admit\",\"tenant\":2}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := newServer([]string{"-wal", walPath}); err == nil {
		t.Fatal("server booted from a corrupt log")
	}
}

// TestShardedWALBootCycle is the sharded-WAL crash drill: a server logging
// to three segments dies with one segment's fsyncs missing from disk. The
// next boot must replay exactly the committed sequence prefix — batches
// after the gap are readable on other segments but unreachable — truncate
// every segment to the recovered frontier, and keep serving; a third boot
// then agrees with the second.
func TestShardedWALBootCycle(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "wal.jsonl")
	args := []string{"-wal", walPath, "-wal-segments", "3", "-gamma", "2", "-k", "10"}

	srv1, opts1, err := newServer(args)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler)
	// Serial singles: admission i seals commit sequence i+1, landing on
	// segment i mod 3.
	for i := 0; i < 12; i++ {
		body := strings.NewReader(fmt.Sprintf(`{"id":%d,"load":0.1}`, i))
		resp, err := ts1.Client().Post(ts1.URL+"/v1/tenants", "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 201 {
			t.Fatalf("place %d: status %d", i, resp.StatusCode)
		}
	}
	ts1.Close()
	if err := opts1.ctrl.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash: segment 1 (sequences 2, 5, 8, 11) lost everything after its
	// first batch — the process died between the per-segment fsyncs. The
	// committed prefix ends at sequence 4, i.e. tenants 0 through 3.
	seg1 := obs.SegmentPath(walPath, 1)
	f, err := os.Open(seg1)
	if err != nil {
		t.Fatal(err)
	}
	events, ends, _, err := obs.ReadWALOffsets(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	cut := int64(-1)
	for j, e := range events {
		if e.Kind == obs.KindWALCommit {
			cut = ends[j]
			break
		}
	}
	if cut < 0 {
		t.Fatal("segment 1 has no commit record")
	}
	if err := os.Truncate(seg1, cut); err != nil {
		t.Fatal(err)
	}

	srv2, opts2, err := newServer(args)
	if err != nil {
		t.Fatalf("boot after segment crash: %v", err)
	}
	ts2 := httptest.NewServer(srv2.Handler)
	snap2 := getOK(t, ts2, "/v1/placement")
	for i := 0; i < 12; i++ {
		want := i < 4
		if got := strings.Contains(snap2, fmt.Sprintf(`"id":%d,"load"`, i)); got != want {
			t.Fatalf("tenant %d present=%v after replay, want %v\n%s", i, got, want, snap2)
		}
	}
	// The recovered server keeps admitting into the trimmed segments.
	presp, err := ts2.Client().Post(ts2.URL+"/v1/tenants", "application/json",
		strings.NewReader(`{"id":100,"load":0.25}`))
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != 201 {
		t.Fatalf("post-recovery admission status %d", presp.StatusCode)
	}
	snap2 = getOK(t, ts2, "/v1/placement")
	ts2.Close()
	if err := opts2.ctrl.Close(); err != nil {
		t.Fatal(err)
	}

	// Boot 3: the trimmed log plus boot 2's appends must replay cleanly to
	// the same state.
	srv3, opts3, err := newServer(args)
	if err != nil {
		t.Fatalf("second restart refused the log: %v", err)
	}
	ts3 := httptest.NewServer(srv3.Handler)
	defer ts3.Close()
	defer opts3.ctrl.Close()
	if snap3 := getOK(t, ts3, "/v1/placement"); snap3 != snap2 {
		t.Fatalf("recovered placement differs:\nbefore: %s\nafter:  %s", snap2, snap3)
	}
	if vresp := getOK(t, ts3, "/v1/validate"); !strings.Contains(vresp, "true") {
		t.Fatalf("recovered placement invalid: %s", vresp)
	}
}

// getOK fetches path from ts and returns the body, requiring status 200.
func getOK(t *testing.T, ts *httptest.Server, path string) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, b)
	}
	return string(b)
}
