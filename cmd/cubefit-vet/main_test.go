package main

import "testing"

// The fixture packages of the analyzers' own golden tests double as
// end-to-end inputs for the CLI: a flagged fixture must drive exit code
// 1, a clean one exit code 0.
const fixtures = "../../internal/analysis/analyzers/testdata"

func TestRunList(t *testing.T) {
	if got := run([]string{"-list"}); got != 0 {
		t.Errorf("run(-list) = %d, want 0", got)
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	if got := run([]string{"-only", "nosuch"}); got != 2 {
		t.Errorf("run(-only nosuch) = %d, want 2", got)
	}
}

func TestRunBadPattern(t *testing.T) {
	if got := run([]string{"./does-not-exist"}); got != 2 {
		t.Errorf("run(./does-not-exist) = %d, want 2", got)
	}
}

func TestRunFlaggedFixture(t *testing.T) {
	if got := run([]string{"-only", "wallclock", fixtures + "/wallclock/flagged"}); got != 1 {
		t.Errorf("run on flagged fixture = %d, want 1", got)
	}
}

func TestRunCleanFixture(t *testing.T) {
	if got := run([]string{"-only", "wallclock", fixtures + "/wallclock/clean"}); got != 0 {
		t.Errorf("run on clean fixture = %d, want 0", got)
	}
}
