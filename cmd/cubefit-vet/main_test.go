package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The fixture packages of the analyzers' own golden tests double as
// end-to-end inputs for the CLI: a flagged fixture must drive exit code
// 1, a clean one exit code 0.
const fixtures = "../../internal/analysis/analyzers/testdata"

// runBuf invokes the CLI with captured output.
func runBuf(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunList(t *testing.T) {
	code, out, _ := runBuf("-list")
	if code != 0 {
		t.Fatalf("run(-list) = %d, want 0", code)
	}
	for _, name := range []string{"epsconst", "eventpool", "failclosed", "floatcmp", "guardedby", "hotpath", "lockpair", "maprange", "randsource", "wallclock"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %q:\n%s", name, out)
		}
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	if code, _, _ := runBuf("-only", "nosuch"); code != 2 {
		t.Errorf("run(-only nosuch) = %d, want 2", code)
	}
	if code, _, _ := runBuf("-skip", "nosuch"); code != 2 {
		t.Errorf("run(-skip nosuch) = %d, want 2", code)
	}
}

func TestRunBadPattern(t *testing.T) {
	if code, _, _ := runBuf("./does-not-exist"); code != 2 {
		t.Errorf("run(./does-not-exist) = %d, want 2", code)
	}
}

func TestRunFlaggedFixture(t *testing.T) {
	code, out, _ := runBuf("-only", "wallclock", fixtures+"/wallclock/flagged")
	if code != 1 {
		t.Errorf("run on flagged fixture = %d, want 1", code)
	}
	if !strings.Contains(out, "wallclock:") {
		t.Errorf("findings missing from stdout:\n%s", out)
	}
}

func TestRunCleanFixture(t *testing.T) {
	if code, _, _ := runBuf("-only", "wallclock", fixtures+"/wallclock/clean"); code != 0 {
		t.Errorf("run on clean fixture = %d, want 0", code)
	}
}

// TestRunSkip: skipping the only analyzer that would fire turns a flagged
// fixture clean.
func TestRunSkip(t *testing.T) {
	code, _, _ := runBuf("-only", "wallclock,floatcmp", "-skip", "wallclock", fixtures+"/wallclock/flagged")
	if code != 0 {
		t.Errorf("run(-skip wallclock) on wallclock fixture = %d, want 0", code)
	}
}

// TestRunJSON round-trips the -json report through encoding/json and
// checks it against the schema documented in API.md.
func TestRunJSON(t *testing.T) {
	code, out, _ := runBuf("-json", "-only", "wallclock", fixtures+"/wallclock/flagged")
	if code != 1 {
		t.Fatalf("run(-json) on flagged fixture = %d, want 1", code)
	}
	var rep vetReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out)
	}
	if rep.Version != 1 {
		t.Errorf("report version = %d, want 1", rep.Version)
	}
	if len(rep.Analyzers) != 1 || rep.Analyzers[0].Name != "wallclock" || rep.Analyzers[0].Doc == "" {
		t.Errorf("analyzers = %+v, want the selected wallclock entry with its doc", rep.Analyzers)
	}
	if rep.Packages < 1 {
		t.Errorf("packages = %d, want >= 1", rep.Packages)
	}
	if len(rep.Findings) == 0 {
		t.Fatalf("flagged fixture produced no findings in the report")
	}
	for _, f := range rep.Findings {
		if f.Analyzer != "wallclock" || f.File == "" || f.Line <= 0 || f.Column <= 0 || f.Message == "" {
			t.Errorf("finding %+v has empty or invalid fields", f)
		}
	}
	if rep.Counts["wallclock"] != len(rep.Findings) {
		t.Errorf("counts[wallclock] = %d, want %d", rep.Counts["wallclock"], len(rep.Findings))
	}
}

// TestRunJSONCleanHasZeroCounts: a clean run still reports every selected
// analyzer in counts, so "ran clean" is distinguishable from "not run".
func TestRunJSONCleanHasZeroCounts(t *testing.T) {
	code, out, _ := runBuf("-json", "-only", "wallclock,floatcmp", fixtures+"/wallclock/clean")
	if code != 0 {
		t.Fatalf("run(-json) on clean fixture = %d, want 0", code)
	}
	var rep vetReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("-json output does not parse: %v", err)
	}
	if len(rep.Findings) != 0 {
		t.Errorf("clean fixture produced findings: %+v", rep.Findings)
	}
	for _, name := range []string{"wallclock", "floatcmp"} {
		if n, ok := rep.Counts[name]; !ok || n != 0 {
			t.Errorf("counts[%s] = %d (present=%v), want explicit 0", name, n, ok)
		}
	}
}

// TestRunCounts: -counts prints a stderr tally line per selected
// analyzer, zeroes included.
func TestRunCounts(t *testing.T) {
	code, _, stderr := runBuf("-counts", "-only", "wallclock,floatcmp", fixtures+"/wallclock/flagged")
	if code != 1 {
		t.Fatalf("run(-counts) on flagged fixture = %d, want 1", code)
	}
	if !strings.Contains(stderr, "wallclock") || !strings.Contains(stderr, "floatcmp") {
		t.Errorf("-counts output missing analyzer tallies:\n%s", stderr)
	}
	if !strings.Contains(stderr, "floatcmp    0") {
		t.Errorf("-counts should report an explicit 0 for floatcmp:\n%s", stderr)
	}
}

// TestSelfCheck: the linter lints the linter. The full suite over
// internal/analysis (framework, harness, analyzers — testdata is excluded
// by pattern expansion) must be clean.
func TestSelfCheck(t *testing.T) {
	code, out, stderr := runBuf("../../internal/analysis/...")
	if code != 0 {
		t.Errorf("cubefit-vet over internal/analysis = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, stderr)
	}
}
