// Command cubefit-vet runs the repository's static-analysis suite
// (internal/analysis/analyzers) over the given package patterns and
// prints position-accurate diagnostics:
//
//	file:line:col: analyzer: message
//
// It exits 0 when the tree is clean, 1 when there are findings, and 2 on
// usage or load errors. `make lint` and the CI workflow run it as a
// blocking gate over ./... — see README.md "Static analysis".
//
// Usage:
//
//	cubefit-vet [-list] [-only name[,name]] [-skip name[,name]] [-json] [-counts] [packages...]
//
// Patterns default to ./... and follow the go tool's directory syntax
// (testdata and hidden directories are never matched). -json replaces the
// plain-text findings with a single machine-readable report on stdout
// (schema documented in API.md); -counts adds a per-analyzer finding
// tally on stderr, which the CI lint job lifts into its summary. Findings
// can be suppressed line-by-line with a
// `//cubefit:vet-allow analyzer -- reason` comment on the finding's line
// or the line above.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cubefit/internal/analysis"
	"cubefit/internal/analysis/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// vetReport is the -json document. Counts carries an entry for every
// analyzer that ran, including zeroes, so dashboards can distinguish "ran
// clean" from "not selected".
type vetReport struct {
	Version   int            `json:"version"`
	Analyzers []vetAnalyzer  `json:"analyzers"`
	Packages  int            `json:"packages"`
	Findings  []vetFinding   `json:"findings"`
	Counts    map[string]int `json:"counts"`
}

type vetAnalyzer struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
}

type vetFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cubefit-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and their invariants, then exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	skip := fs.String("skip", "", "comma-separated analyzer names to exclude")
	jsonOut := fs.Bool("json", false, "emit one machine-readable JSON report on stdout instead of plain findings")
	counts := fs.Bool("counts", false, "print per-analyzer finding counts on stderr")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: cubefit-vet [-list] [-only name[,name]] [-skip name[,name]] [-json] [-counts] [packages...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-11s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	suite, err := selectAnalyzers(suite, *only, *skip, stderr)
	if err != nil {
		return 2
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "cubefit-vet: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "cubefit-vet: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(suite, pkgs)
	if err != nil {
		fmt.Fprintf(stderr, "cubefit-vet: %v\n", err)
		return 2
	}
	cwd, _ := os.Getwd()
	for i := range diags {
		diags[i].Pos.Filename = relPath(cwd, diags[i].Pos.Filename)
	}

	if *jsonOut {
		if err := writeReport(stdout, suite, pkgs, diags); err != nil {
			fmt.Fprintf(stderr, "cubefit-vet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if *counts {
		tally := countByAnalyzer(suite, diags)
		for _, a := range suite {
			fmt.Fprintf(stderr, "%-11s %d\n", a.Name, tally[a.Name])
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "cubefit-vet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

// selectAnalyzers applies -only then -skip to the suite, rejecting names
// that match no analyzer (a typo must not silently disable a gate).
func selectAnalyzers(suite []*analysis.Analyzer, only, skip string, stderr io.Writer) ([]*analysis.Analyzer, error) {
	byName := make(map[string]*analysis.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	if only != "" {
		var picked []*analysis.Analyzer
		for _, n := range splitNames(only) {
			a, ok := byName[n]
			if !ok {
				fmt.Fprintf(stderr, "cubefit-vet: unknown analyzer %q (see -list)\n", n)
				return nil, fmt.Errorf("unknown analyzer %q", n)
			}
			picked = append(picked, a)
		}
		suite = picked
	}
	if skip != "" {
		drop := make(map[string]bool)
		for _, n := range splitNames(skip) {
			if _, ok := byName[n]; !ok {
				fmt.Fprintf(stderr, "cubefit-vet: unknown analyzer %q (see -list)\n", n)
				return nil, fmt.Errorf("unknown analyzer %q", n)
			}
			drop[n] = true
		}
		var kept []*analysis.Analyzer
		for _, a := range suite {
			if !drop[a.Name] {
				kept = append(kept, a)
			}
		}
		suite = kept
	}
	return suite, nil
}

func splitNames(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// relPath shortens an absolute finding path to be cwd-relative when it
// lies under the working directory.
func relPath(cwd, name string) string {
	if cwd == "" {
		return name
	}
	if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}

func countByAnalyzer(suite []*analysis.Analyzer, diags []analysis.Diagnostic) map[string]int {
	tally := make(map[string]int, len(suite))
	for _, a := range suite {
		tally[a.Name] = 0
	}
	for _, d := range diags {
		tally[d.Analyzer]++
	}
	return tally
}

func writeReport(w io.Writer, suite []*analysis.Analyzer, pkgs []*analysis.Package, diags []analysis.Diagnostic) error {
	rep := vetReport{
		Version:  1,
		Packages: len(pkgs),
		Findings: make([]vetFinding, 0, len(diags)),
		Counts:   countByAnalyzer(suite, diags),
	}
	for _, a := range suite {
		rep.Analyzers = append(rep.Analyzers, vetAnalyzer{Name: a.Name, Doc: a.Doc})
	}
	for _, d := range diags {
		rep.Findings = append(rep.Findings, vetFinding{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
