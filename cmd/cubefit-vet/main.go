// Command cubefit-vet runs the repository's static-analysis suite
// (internal/analysis/analyzers) over the given package patterns and
// prints position-accurate diagnostics:
//
//	file:line:col: analyzer: message
//
// It exits 0 when the tree is clean, 1 when there are findings, and 2 on
// usage or load errors. `make lint` and the CI workflow run it as a
// blocking gate over ./... — see README.md "Static analysis".
//
// Usage:
//
//	cubefit-vet [-list] [-only name[,name]] [packages...]
//
// Patterns default to ./... and follow the go tool's directory syntax
// (testdata and hidden directories are never matched). Findings can be
// suppressed line-by-line with a `//cubefit:vet-allow analyzer -- reason`
// comment on the finding's line or the line above.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cubefit/internal/analysis"
	"cubefit/internal/analysis/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("cubefit-vet", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	list := fs.Bool("list", false, "list the analyzers and their invariants, then exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: cubefit-vet [-list] [-only name[,name]] [packages...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer, len(suite))
		for _, a := range suite {
			byName[a.Name] = a
		}
		var picked []*analysis.Analyzer
		for _, n := range strings.Split(*only, ",") {
			n = strings.TrimSpace(n)
			a, ok := byName[n]
			if !ok {
				fmt.Fprintf(os.Stderr, "cubefit-vet: unknown analyzer %q (see -list)\n", n)
				return 2
			}
			picked = append(picked, a)
		}
		suite = picked
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "cubefit-vet: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cubefit-vet: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(suite, pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cubefit-vet: %v\n", err)
		return 2
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				d.Pos.Filename = rel
			}
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cubefit-vet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
