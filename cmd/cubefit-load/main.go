// Command cubefit-load is a closed-loop admission load harness: a fixed
// pool of workers drives the service admission path as fast as responses
// come back — each worker issues a request, waits for the ack, and
// immediately issues the next — so the measured throughput is the
// sustained, acknowledged rate rather than an open-loop send rate.
//
// Usage:
//
//	cubefit-load [-mode both] [-workers 4] [-ops 30000] [-batch 64]
//	             [-gamma 2] [-k 10] [-wal path] [-wal-segments 1] [-url http://host:8080]
//	             [-o report.json] [-minspeedup 0] [-trace=false] [-spans path] [-health=false]
//
// By default the harness is self-contained: it builds the same controller
// cubefit-server serves, exposes it on a loopback listener, and drives it
// over real HTTP with connection reuse — so the single-vs-batch comparison
// includes the per-request transport and handler costs that batching
// amortizes, exactly as a deployment would see them. With -url it instead
// drives an already-running server. With -wal the self-hosted controller
// group-commits every admission to a write-ahead log, measuring the
// durable path.
//
// Modes: "single" admits one tenant per POST /v1/tenants request, "batch"
// admits -batch tenants per POST /v1/tenants:batch request, and "both"
// runs single then batch on fresh controllers and reports the per-tenant
// speedup. -minspeedup N fails the run (exit 2) when batch admission is
// not at least N× the single-request rate, so CI can gate the pipeline's
// reason to exist.
//
// -o writes a JSON report in the cubefit-bench format — per-mode ns/op
// (mean wall time per admitted tenant) plus P50/P99 request latency — so
// `cubefit-bench -compare old.json new.json` diffs load-harness runs
// exactly like microbenchmarks. When the target traces its admission
// pipeline (the default for the in-process controller), the report also
// carries server-side stage columns (queue/place/commit P50/P99 from
// GET /debug/pipeline), so -compare gates stage regressions too.
//
// -trace=false disables span tracing on the in-process controller, which
// CI uses to measure tracing overhead (tracing-off vs tracing-on ns/op);
// -spans captures the admission span log (JSONL) for
// `cubefit-inspect latency`.
//
// When the target serves GET /debug/health (the in-process controller
// runs the health sampling loop during the run), each mode's report
// folds the verdict in: the final health state, any state transitions
// the load provoked (burn-rate breach, queue saturation), and a
// health-transitions column in the -o report.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cubefit/internal/api"
	"cubefit/internal/core"
	"cubefit/internal/obs"
	"cubefit/internal/stats"
	"cubefit/internal/workload"
)

// ErrGate is returned when -minspeedup is not met; main translates it to
// exit code 2 so CI can tell a gate failure from an operational error.
var ErrGate = errors.New("batch speedup below gate")

func main() {
	err := run(os.Args[1:], os.Stdout)
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "cubefit-load:", err)
	if errors.Is(err, ErrGate) {
		os.Exit(2)
	}
	os.Exit(1)
}

type config struct {
	mode        string
	workers     int
	ops         int
	batch       int
	gamma, k    int
	wal         string
	walSegments int
	reference   bool
	url         string
	out         string
	minSpeedup  float64
	trace       bool
	spans       string
	health      bool
	// spanSink is shared across modes so -spans captures one contiguous
	// log per invocation.
	spanSink *obs.SpanJSONL
}

// result is one mode's measurement.
type result struct {
	name      string
	tenants   int           // admitted tenants
	requests  int           // HTTP round trips
	elapsed   time.Duration // wall clock, first send to last ack
	latencies []float64     // per-request ns
	// stages holds server-side per-stage percentiles (queue/place/commit
	// P50/P99 in ns) pulled from GET /debug/pipeline; empty when the
	// target does not trace.
	stages map[string]float64
	// health is the target's verdict after the run, pulled from
	// GET /debug/health; nil when the target does not serve it.
	health *healthSummary
}

// healthSummary is the slice of GET /debug/health the harness folds into
// its report: a run that degraded the server (burn-rate breach, queue
// saturation, headroom erosion) surfaces next to the numbers that caused
// it.
type healthSummary struct {
	State            string `json:"state"`
	TransitionsTotal uint64 `json:"transitionsTotal"`
	Transitions      []struct {
		TNs   int64    `json:"tNs"`
		From  string   `json:"from"`
		To    string   `json:"to"`
		Rules []string `json:"rules"`
	} `json:"transitions"`
}

func (r result) perTenantNs() float64 {
	return float64(r.elapsed.Nanoseconds()) / float64(r.tenants)
}

func (r result) throughput() float64 {
	return float64(r.tenants) / r.elapsed.Seconds()
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("cubefit-load", flag.ContinueOnError)
	cfg := config{}
	fs.StringVar(&cfg.mode, "mode", "both", "single, batch, or both")
	fs.IntVar(&cfg.workers, "workers", 4, "closed-loop workers")
	fs.IntVar(&cfg.ops, "ops", 30000, "tenants to admit per mode")
	fs.IntVar(&cfg.batch, "batch", 64, "tenants per batch request")
	fs.IntVar(&cfg.gamma, "gamma", 2, "replicas per tenant")
	fs.IntVar(&cfg.k, "k", 10, "CubeFit classes")
	fs.StringVar(&cfg.wal, "wal", "", "write-ahead log path for the in-process controller (measures the durable path)")
	fs.IntVar(&cfg.walSegments, "wal-segments", 1, "shard the in-process controller's WAL over this many segments (parallel group commits); 1 keeps the single file")
	fs.BoolVar(&cfg.reference, "reference", false, "run the engine's reference reserve path (no incremental cache) for apples-to-apples fast-path comparisons")
	fs.StringVar(&cfg.url, "url", "", "drive a live server at this base URL instead of in process")
	fs.StringVar(&cfg.out, "o", "", "write a cubefit-bench JSON report here")
	fs.Float64Var(&cfg.minSpeedup, "minspeedup", 0, "fail unless batch is at least this many times faster per tenant (mode both)")
	fs.BoolVar(&cfg.trace, "trace", true, "enable pipeline span tracing on the in-process controller")
	fs.StringVar(&cfg.spans, "spans", "", "export admission spans (JSONL) from the in-process controller here")
	fs.BoolVar(&cfg.health, "health", true, "run the health sampling loop during the run and fold the verdict into the report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch cfg.mode {
	case "single", "batch", "both":
	default:
		return fmt.Errorf("unknown -mode %q", cfg.mode)
	}
	if cfg.workers < 1 || cfg.ops < 1 || cfg.batch < 1 {
		return errors.New("-workers, -ops and -batch must be positive")
	}
	if cfg.minSpeedup > 0 && cfg.mode != "both" {
		return errors.New("-minspeedup requires -mode both")
	}
	if cfg.url != "" && (!cfg.trace || cfg.spans != "") {
		return errors.New("-trace and -spans configure the in-process controller; they cannot apply to -url targets")
	}
	if cfg.spans != "" && !cfg.trace {
		return errors.New("-spans requires tracing (-trace)")
	}
	if cfg.walSegments < 1 {
		return errors.New("-wal-segments must be at least 1")
	}
	if cfg.walSegments > 1 && cfg.wal == "" {
		return errors.New("-wal-segments requires -wal")
	}
	if cfg.spans != "" {
		f, err := os.Create(cfg.spans)
		if err != nil {
			return err
		}
		sink := obs.NewSpanJSONL(f)
		cfg.spanSink = sink
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		defer func() {
			if serr := sink.Err(); serr != nil && err == nil {
				err = fmt.Errorf("span export: %w", serr)
			}
		}()
	}

	var results []result
	if cfg.mode == "single" || cfg.mode == "both" {
		r, err := runMode(cfg, false)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	if cfg.mode == "batch" || cfg.mode == "both" {
		r, err := runMode(cfg, true)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	for _, r := range results {
		p50, p99 := latencyPercentiles(r.latencies)
		fmt.Fprintf(stdout, "%-12s %8d tenants %8d requests  %10.0f tenants/s  p50 %8s  p99 %8s\n",
			r.name, r.tenants, r.requests, r.throughput(),
			time.Duration(p50), time.Duration(p99))
		if len(r.stages) > 0 {
			fmt.Fprintf(stdout, "  stages:")
			for _, st := range stageNames {
				fmt.Fprintf(stdout, "  %s p50 %s p99 %s", st,
					time.Duration(r.stages[st+"-p50-ns"]),
					time.Duration(r.stages[st+"-p99-ns"]))
			}
			fmt.Fprintln(stdout)
		}
		if r.health != nil {
			fmt.Fprintf(stdout, "  health: %s, %d transitions\n", r.health.State, r.health.TransitionsTotal)
			for _, tr := range r.health.Transitions {
				fmt.Fprintf(stdout, "    %s %s → %s [%s]\n",
					time.Duration(tr.TNs), tr.From, tr.To, strings.Join(tr.Rules, ", "))
			}
		}
	}
	if cfg.out != "" {
		if err := writeReport(cfg.out, results); err != nil {
			return err
		}
	}
	if len(results) == 2 {
		speedup := results[0].perTenantNs() / results[1].perTenantNs()
		fmt.Fprintf(stdout, "batch speedup: %.1fx per admitted tenant\n", speedup)
		if cfg.minSpeedup > 0 && speedup < cfg.minSpeedup {
			return fmt.Errorf("%w: %.1fx < %.1fx", ErrGate, speedup, cfg.minSpeedup)
		}
	}
	return nil
}

// target abstracts where requests go: an in-process handler or a live
// server. do returns the response status and, for batches, the number of
// failed items.
type target interface {
	do(path string, body []byte) (status, failed int, err error)
	pipelineStages() (map[string]float64, bool)
	health() (*healthSummary, bool)
	close() error
}

// selfhosted serves a fresh controller on a loopback listener and drives
// it over HTTP like any client would.
type selfhosted struct {
	remote
	srv  *httptest.Server
	ctrl *api.Controller
}

func newSelfhosted(cfg config) (*selfhosted, error) {
	cf, err := core.New(core.Config{Gamma: cfg.gamma, K: cfg.k, ReferenceReserve: cfg.reference})
	if err != nil {
		return nil, err
	}
	var opts []api.Option
	if cfg.wal != "" {
		if cfg.walSegments > 1 {
			sw, err := obs.OpenShardedWAL(cfg.wal, cfg.walSegments, 1)
			if err != nil {
				return nil, err
			}
			opts = append(opts, api.WithWAL(sw))
		} else {
			w, err := obs.OpenWAL(cfg.wal)
			if err != nil {
				return nil, err
			}
			opts = append(opts, api.WithWAL(w))
		}
	}
	if !cfg.trace {
		opts = append(opts, api.WithoutSpanTracing())
	}
	if cfg.spanSink != nil {
		opts = append(opts, api.WithSpanSink(cfg.spanSink))
	}
	if cfg.health {
		// Sample health for real during the run, so the report's verdict
		// reflects what the load did to the server rather than the boot
		// state. -health=false keeps the loop off, which CI diffs against
		// to measure the sampler's overhead.
		opts = append(opts, api.WithHealthLoop())
	}
	ctrl, err := api.NewController(cf, workload.DefaultLoadModel(), opts...)
	if err != nil {
		return nil, err
	}
	srv := httptest.NewServer(ctrl.Handler())
	s := &selfhosted{srv: srv, ctrl: ctrl}
	s.remote = *newRemote(config{url: srv.URL, workers: cfg.workers})
	return s, nil
}

func (s *selfhosted) close() error {
	s.srv.Close()
	return s.ctrl.Close()
}

// remote drives a live server over HTTP with connection reuse.
type remote struct {
	base   string
	client *http.Client
}

func newRemote(cfg config) *remote {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = cfg.workers * 2
	return &remote{base: cfg.url, client: &http.Client{Transport: tr, Timeout: 30 * time.Second}}
}

func (r *remote) do(path string, body []byte) (int, int, error) {
	resp, err := r.client.Post(r.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, 0, err
	}
	return decodeOutcome(resp.StatusCode, data)
}

func (r *remote) close() error { return nil }

// stageNames are the pipeline stages exported as report columns: queue
// wait, in-batch placement, and the combined WAL-stage+fsync commit cost.
var stageNames = []string{"queue", "place", "commit"}

// pipelineStages pulls per-stage P50/P99 (ns) from GET /debug/pipeline,
// reporting ok=false when the target does not trace (404 or any error) so
// untraced runs simply omit the columns.
func (r *remote) pipelineStages() (map[string]float64, bool) {
	resp, err := r.client.Get(r.base + "/debug/pipeline")
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	var debug struct {
		Spans struct {
			Stages map[string]struct {
				P50Ns float64 `json:"p50Ns"`
				P99Ns float64 `json:"p99Ns"`
			} `json:"stages"`
		} `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&debug); err != nil {
		return nil, false
	}
	out := make(map[string]float64, 2*len(stageNames))
	for _, name := range stageNames {
		s, ok := debug.Spans.Stages[name]
		if !ok {
			return nil, false
		}
		out[name+"-p50-ns"] = s.P50Ns
		out[name+"-p99-ns"] = s.P99Ns
	}
	return out, true
}

// health pulls the target's verdict from GET /debug/health, reporting
// ok=false when the endpoint is absent (an older or foreign server) so
// such targets simply omit the health line.
func (r *remote) health() (*healthSummary, bool) {
	resp, err := r.client.Get(r.base + "/debug/health")
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	var hs healthSummary
	if err := json.NewDecoder(resp.Body).Decode(&hs); err != nil {
		return nil, false
	}
	return &hs, true
}

// decodeOutcome extracts per-item failures from a batch response; single
// responses report via status alone.
func decodeOutcome(status int, body []byte) (int, int, error) {
	if status != http.StatusOK {
		return status, 0, nil
	}
	var br struct {
		Failed int `json:"failed"`
	}
	if err := json.Unmarshal(body, &br); err != nil {
		return status, 0, err
	}
	return status, br.Failed, nil
}

// runMode measures one mode on a fresh target (in-process) or the shared
// live server (-url).
func runMode(cfg config, batched bool) (result, error) {
	var tgt target
	if cfg.url != "" {
		tgt = newRemote(cfg)
	} else {
		s, err := newSelfhosted(cfg)
		if err != nil {
			return result{}, err
		}
		tgt = s
	}
	defer tgt.close()

	name := "single"
	if batched {
		name = "batch"
	}
	// Unique IDs per run; a live server keeps state across modes, so salt
	// with the current time to avoid 409s between invocations.
	var base int64
	if cfg.url != "" {
		base = time.Now().UnixNano() % (1 << 40)
	}
	var next atomic.Int64
	next.Store(base)
	admitted := base + int64(cfg.ops)

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		requests atomic.Int64
		fails    atomic.Int64
		lats     = make([][]float64, cfg.workers)
	)
	fail := func(err error) { errOnce.Do(func() { firstErr = err }) }
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]float64, 0, cfg.ops/cfg.workers+1)
			defer func() { lats[w] = local }()
			for {
				var take int64 = 1
				if batched {
					take = int64(cfg.batch)
				}
				lo := next.Add(take) - take
				if lo >= admitted {
					return
				}
				hi := lo + take
				if hi > admitted {
					hi = admitted
				}
				body, path := encodeRequest(lo, hi, batched)
				t0 := time.Now()
				status, failed, err := tgt.do(path, body)
				local = append(local, float64(time.Since(t0).Nanoseconds()))
				requests.Add(1)
				if err != nil {
					fail(err)
					return
				}
				wantStatus := http.StatusCreated
				if batched {
					wantStatus = http.StatusOK
				}
				if status != wantStatus || failed > 0 {
					fails.Add(hi - lo)
					fail(fmt.Errorf("%s admission failed: status %d, %d failed items", name, status, failed))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return result{}, firstErr
	}
	var merged []float64
	for _, l := range lats {
		merged = append(merged, l...)
	}
	// Server-side stage attribution, when the target traces. On a shared
	// -url target the window spans every mode driven so far; self-hosted
	// targets are fresh per mode.
	stages, _ := tgt.pipelineStages()
	var hs *healthSummary
	if cfg.health {
		hs, _ = tgt.health()
	}
	return result{
		name:      name,
		tenants:   cfg.ops,
		requests:  int(requests.Load()),
		elapsed:   elapsed,
		latencies: merged,
		stages:    stages,
		health:    hs,
	}, nil
}

// encodeRequest builds the admission body for tenant IDs [lo, hi). Client
// counts cycle 1..15, deriving loads well inside (0,1] under the default
// model.
func encodeRequest(lo, hi int64, batched bool) ([]byte, string) {
	var buf bytes.Buffer
	if !batched {
		fmt.Fprintf(&buf, `{"id":%d,"clients":%d}`, lo, 1+lo%15)
		return buf.Bytes(), "/v1/tenants"
	}
	buf.WriteString(`{"tenants":[`)
	for id := lo; id < hi; id++ {
		if id > lo {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, `{"id":%d,"clients":%d}`, id, 1+id%15)
	}
	buf.WriteString(`]}`)
	return buf.Bytes(), "/v1/tenants:batch"
}

func latencyPercentiles(ns []float64) (p50, p99 float64) {
	if len(ns) == 0 {
		return 0, 0
	}
	p50, _ = stats.PercentileInPlace(ns, 50)
	p99, _ = stats.P99InPlace(ns)
	return p50, p99
}

// report mirrors the cubefit-bench JSON shape so -compare diffs load runs
// like benchmark runs.
type report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

type benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func writeReport(path string, results []result) error {
	rep := report{Goos: runtime.GOOS, Goarch: runtime.GOARCH, Pkg: "cubefit/cmd/cubefit-load"}
	for _, r := range results {
		p50, p99 := latencyPercentiles(r.latencies)
		metrics := map[string]float64{
			"ns/op":     r.perTenantNs(),
			"p50-ns":    p50,
			"p99-ns":    p99,
			"tenants/s": r.throughput(),
		}
		// Per-stage breakdown columns (queue/place/commit P50/P99) so
		// cubefit-bench -compare can gate stage regressions; absent when
		// the target does not trace, which -compare skips.
		for k, v := range r.stages {
			metrics[k] = v
		}
		// Health verdict column: transitions observed during the run (0 on
		// a run the server stayed healthy through).
		if r.health != nil {
			metrics["health-transitions"] = float64(r.health.TransitionsTotal)
		}
		rep.Benchmarks = append(rep.Benchmarks, benchmark{
			Name:       "Load/" + r.name,
			Iterations: int64(r.tenants),
			Metrics:    metrics,
		})
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
