package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBothWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "load.json")
	var buf bytes.Buffer
	err := run([]string{"-ops", "300", "-batch", "16", "-workers", "2", "-o", out}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "batch speedup:") {
		t.Fatalf("missing speedup line:\n%s", buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("report has %d benchmarks, want 2", len(rep.Benchmarks))
	}
	for i, name := range []string{"Load/single", "Load/batch"} {
		b := rep.Benchmarks[i]
		if b.Name != name || b.Iterations != 300 {
			t.Fatalf("benchmark %d = %+v", i, b)
		}
		for _, unit := range []string{"ns/op", "p50-ns", "p99-ns", "tenants/s"} {
			if b.Metrics[unit] <= 0 {
				t.Fatalf("%s metric %s = %v", name, unit, b.Metrics[unit])
			}
		}
	}
}

func TestRunSingleMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-mode", "single", "-ops", "200", "-workers", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "speedup") {
		t.Fatal("single mode printed a speedup")
	}
}

func TestRunWALMode(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "wal.jsonl")
	var buf bytes.Buffer
	if err := run([]string{"-mode", "batch", "-ops", "200", "-batch", "16", "-wal", walPath}, &buf); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("durable mode left the WAL empty")
	}
}

func TestRunGateFails(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-ops", "200", "-batch", "16", "-minspeedup", "1e9"}, &buf)
	if !errors.Is(err, ErrGate) {
		t.Fatalf("impossible gate passed: %v", err)
	}
}

func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-mode", "bogus"},
		{"-ops", "0"},
		{"-workers", "0"},
		{"-batch", "0"},
		{"-mode", "single", "-minspeedup", "2"},
	} {
		if err := run(args, new(bytes.Buffer)); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestEncodeRequest(t *testing.T) {
	body, path := encodeRequest(5, 6, false)
	if path != "/v1/tenants" || !json.Valid(body) {
		t.Fatalf("single: path %q body %s", path, body)
	}
	body, path = encodeRequest(0, 3, true)
	if path != "/v1/tenants:batch" || !json.Valid(body) {
		t.Fatalf("batch: path %q body %s", path, body)
	}
	var br struct {
		Tenants []struct {
			ID      int `json:"id"`
			Clients int `json:"clients"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Tenants) != 3 || br.Tenants[2].ID != 2 || br.Tenants[2].Clients != 3 {
		t.Fatalf("batch body decoded to %+v", br)
	}
}
