package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cubefit/internal/obs"
)

func TestRunBothWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "load.json")
	var buf bytes.Buffer
	err := run([]string{"-ops", "300", "-batch", "16", "-workers", "2", "-o", out}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "batch speedup:") {
		t.Fatalf("missing speedup line:\n%s", buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("report has %d benchmarks, want 2", len(rep.Benchmarks))
	}
	for i, name := range []string{"Load/single", "Load/batch"} {
		b := rep.Benchmarks[i]
		if b.Name != name || b.Iterations != 300 {
			t.Fatalf("benchmark %d = %+v", i, b)
		}
		for _, unit := range []string{
			"ns/op", "p50-ns", "p99-ns", "tenants/s",
			"queue-p50-ns", "queue-p99-ns", "place-p50-ns", "place-p99-ns",
			"commit-p50-ns", "commit-p99-ns",
		} {
			if _, ok := b.Metrics[unit]; !ok {
				t.Fatalf("%s missing metric %s", name, unit)
			}
		}
		if b.Metrics["ns/op"] <= 0 || b.Metrics["queue-p99-ns"] < b.Metrics["queue-p50-ns"] {
			t.Fatalf("%s metrics implausible: %v", name, b.Metrics)
		}
		if _, ok := b.Metrics["health-transitions"]; !ok {
			t.Fatalf("%s missing the health-transitions column: %v", name, b.Metrics)
		}
	}
	if !strings.Contains(buf.String(), "stages:") {
		t.Fatalf("missing stage breakdown line:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "health:") {
		t.Fatalf("missing health verdict line:\n%s", buf.String())
	}
}

// TestRunHealthOff: -health=false keeps the sampling loop off and omits
// the health line and column (the overhead-measurement baseline).
func TestRunHealthOff(t *testing.T) {
	out := filepath.Join(t.TempDir(), "load.json")
	var buf bytes.Buffer
	if err := run([]string{"-mode", "batch", "-ops", "200", "-batch", "16",
		"-health=false", "-o", out}, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "health:") {
		t.Fatal("health-off run printed a health verdict")
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.Benchmarks[0].Metrics["health-transitions"]; ok {
		t.Fatal("health-off report carries the health column")
	}
}

// TestRunTracingOff: -trace=false still measures, omits the stage
// columns, and prints no stage line.
func TestRunTracingOff(t *testing.T) {
	out := filepath.Join(t.TempDir(), "load.json")
	var buf bytes.Buffer
	if err := run([]string{"-mode", "batch", "-ops", "200", "-batch", "16",
		"-trace=false", "-o", out}, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "stages:") {
		t.Fatal("tracing-off run printed a stage breakdown")
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.Benchmarks[0].Metrics["queue-p50-ns"]; ok {
		t.Fatal("tracing-off report carries stage columns")
	}
	if rep.Benchmarks[0].Metrics["ns/op"] <= 0 {
		t.Fatal("tracing-off report lost the throughput metrics")
	}
}

// TestRunSpanExport: -spans captures a JSONL log whose spans cover every
// admission of the run and telescope.
func TestRunSpanExport(t *testing.T) {
	spansPath := filepath.Join(t.TempDir(), "spans.jsonl")
	var buf bytes.Buffer
	if err := run([]string{"-mode", "batch", "-ops", "192", "-batch", "16",
		"-spans", spansPath}, &buf); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(spansPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans, err := obs.ReadSpanJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 192 {
		t.Fatalf("exported %d spans, want 192", len(spans))
	}
	for _, s := range spans {
		sum := s.QueueNs() + s.PlaceNs() + s.WalNs() + s.FsyncNs() + s.AckLatencyNs()
		if sum != s.TotalNs() {
			t.Fatalf("span does not telescope: %+v", s)
		}
		if !s.Batch || s.Status != 201 {
			t.Fatalf("unexpected span shape: %+v", s)
		}
	}
}

func TestRunSingleMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-mode", "single", "-ops", "200", "-workers", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "speedup") {
		t.Fatal("single mode printed a speedup")
	}
}

func TestRunWALMode(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "wal.jsonl")
	var buf bytes.Buffer
	if err := run([]string{"-mode", "batch", "-ops", "200", "-batch", "16", "-wal", walPath}, &buf); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("durable mode left the WAL empty")
	}
}

func TestRunGateFails(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-ops", "200", "-batch", "16", "-minspeedup", "1e9"}, &buf)
	if !errors.Is(err, ErrGate) {
		t.Fatalf("impossible gate passed: %v", err)
	}
}

func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-mode", "bogus"},
		{"-ops", "0"},
		{"-workers", "0"},
		{"-batch", "0"},
		{"-mode", "single", "-minspeedup", "2"},
		{"-url", "http://localhost:1", "-trace=false"},
		{"-url", "http://localhost:1", "-spans", "x.jsonl"},
		{"-spans", "x.jsonl", "-trace=false"},
	} {
		if err := run(args, new(bytes.Buffer)); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestEncodeRequest(t *testing.T) {
	body, path := encodeRequest(5, 6, false)
	if path != "/v1/tenants" || !json.Valid(body) {
		t.Fatalf("single: path %q body %s", path, body)
	}
	body, path = encodeRequest(0, 3, true)
	if path != "/v1/tenants:batch" || !json.Valid(body) {
		t.Fatalf("batch: path %q body %s", path, body)
	}
	var br struct {
		Tenants []struct {
			ID      int `json:"id"`
			Clients int `json:"clients"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Tenants) != 3 || br.Tenants[2].ID != 2 || br.Tenants[2].Clients != 3 {
		t.Fatalf("batch body decoded to %+v", br)
	}
}
