package cubefit

import (
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	c, err := New(WithReplication(2), WithClasses(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Place(Tenant{ID: 1, Load: 0.3}); err != nil {
		t.Fatal(err)
	}
	hosts := c.Placement().TenantHosts(1)
	if len(hosts) != 2 || hosts[0] == hosts[1] {
		t.Fatalf("hosts = %v", hosts)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestOptionsApplied(t *testing.T) {
	if _, err := New(WithReplication(0)); err == nil {
		t.Fatal("invalid replication accepted")
	}
	if _, err := New(WithClasses(1)); err == nil {
		t.Fatal("invalid class count accepted")
	}
	c, err := New(WithReplication(3), WithClasses(5), WithoutFirstStage())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Place(Tenant{ID: 1, Load: 0.4}); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.FirstStageTenants != 0 {
		t.Fatalf("first stage ran despite WithoutFirstStage: %+v", got)
	}
	if len(c.Placement().TenantHosts(1)) != 3 {
		t.Fatal("replication option not applied")
	}
}

func TestMultiReplicaPolicyOption(t *testing.T) {
	c, err := New(WithReplication(2), WithClasses(10), WithMultiReplicaTinyPolicy())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := c.Place(Tenant{ID: TenantID(i), Load: 0.02}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// γ=3, K=5 cannot support the multi-replica policy.
	if _, err := New(WithReplication(3), WithClasses(5), WithMultiReplicaTinyPolicy()); err == nil {
		t.Fatal("invalid multi-replica config accepted")
	}
}

func TestWorkloadsAndFailureDrill(t *testing.T) {
	src, err := UniformWorkload(15, 7)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(WithMinTenantLoad(DefaultLoadModel().Load(1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range TakeTenants(src, 200) {
		if err := c.Place(tn); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	plan, err := WorstCaseFailures(c.Placement(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Servers) != 1 {
		t.Fatalf("plan = %+v", plan)
	}
	if plan.MaxClientLoad > MaxClientsPerServer+1e-9 {
		t.Fatalf("CubeFit let worst-case single failure push %v client load on one server", plan.MaxClientLoad)
	}
}

func TestZipfWorkload(t *testing.T) {
	src, err := ZipfWorkload(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range TakeTenants(src, 100) {
		if tn.Clients < 1 || tn.Clients > MaxClientsPerServer {
			t.Fatalf("clients %d out of range", tn.Clients)
		}
	}
	if _, err := ZipfWorkload(0, 5); err == nil {
		t.Fatal("exponent 0 accepted")
	}
	if _, err := UniformWorkload(0, 5); err == nil {
		t.Fatal("maxClients 0 accepted")
	}
}

func TestNewRFI(t *testing.T) {
	a, err := NewRFI(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Place(Tenant{ID: 1, Load: 0.5}); err != nil {
		t.Fatal(err)
	}
	if a.Placement().NumUsedServers() != 2 {
		t.Fatalf("servers = %d", a.Placement().NumUsedServers())
	}
	if _, err := NewRFI(0, 0.85); err == nil {
		t.Fatal("gamma 0 accepted")
	}
}

func TestSimulateLatency(t *testing.T) {
	src, err := UniformWorkload(15, 11)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New()
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range TakeTenants(src, 60) {
		if err := c.Place(tn); err != nil {
			t.Fatal(err)
		}
	}
	res, err := SimulateLatency(c.Placement(), FailurePlan{}, LatencyConfig{Warmup: 5, Measure: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 || res.ViolatesSLA {
		t.Fatalf("healthy run result = %+v", res)
	}
	plan, err := WorstCaseFailures(c.Placement(), 1)
	if err != nil {
		t.Fatal(err)
	}
	degraded, err := SimulateLatency(c.Placement(), plan, LatencyConfig{Warmup: 5, Measure: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if degraded.P99 <= res.P99 {
		t.Fatalf("worst-case failure did not raise P99: %v vs %v", degraded.P99, res.P99)
	}
	if degraded.ViolatesSLA {
		t.Fatalf("CubeFit γ=2 violated SLA under one failure: %+v", degraded)
	}
}

func TestRemoveExtension(t *testing.T) {
	c, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Place(Tenant{ID: 1, Load: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(1); err != nil {
		t.Fatal(err)
	}
	if c.Placement().NumTenants() != 0 {
		t.Fatal("tenant not removed")
	}
	if err := c.Remove(1); err == nil {
		t.Fatal("double remove accepted")
	}
}

func TestRepackAfterChurn(t *testing.T) {
	c, err := New()
	if err != nil {
		t.Fatal(err)
	}
	src, err := UniformWorkload(15, 55)
	if err != nil {
		t.Fatal(err)
	}
	tenants := TakeTenants(src, 300)
	for _, tn := range tenants {
		if err := c.Place(tn); err != nil {
			t.Fatal(err)
		}
	}
	for i, tn := range tenants {
		if i%2 == 0 {
			if err := c.Remove(tn.ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	fresh, plan, err := Repack(c.Placement())
	if err != nil {
		t.Fatal(err)
	}
	if plan.AfterServers >= plan.BeforeServers {
		t.Fatalf("repack saved nothing: %d -> %d", plan.BeforeServers, plan.AfterServers)
	}
	if err := fresh.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceOffline(t *testing.T) {
	src, err := UniformWorkload(15, 66)
	if err != nil {
		t.Fatal(err)
	}
	tenants := TakeTenants(src, 500)
	off, err := PlaceOffline(2, tenants)
	if err != nil {
		t.Fatal(err)
	}
	if err := off.Validate(); err != nil {
		t.Fatal(err)
	}

	on, err := New()
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range tenants {
		if err := on.Place(tn); err != nil {
			t.Fatal(err)
		}
	}
	// On client-quantized workloads CubeFit's structured packing can beat
	// naive FFD-with-reserve, so neither side dominates universally; they
	// must land in the same ballpark.
	offN, onN := off.NumUsedServers(), on.Placement().NumUsedServers()
	if float64(offN) > 1.3*float64(onN) || float64(onN) > 1.3*float64(offN) {
		t.Fatalf("offline (%d) and online (%d) server counts diverge", offN, onN)
	}
}
