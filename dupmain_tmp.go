package main

import (
	"fmt"

	"cubefit/internal/core"
	"cubefit/internal/obs"
	"cubefit/internal/packing"
)

func main() {
	cf, err := core.New(core.Config{Gamma: 2, K: 10})
	if err != nil { panic(err) }
	ring := obs.NewRing(100)
	cf.SetRecorder(ring)
	t := packing.Tenant{ID: 7, Load: 0.3}
	if err := cf.Place(t); err != nil { panic(err) }
	// duplicate attempt — rejected, tenant stays admitted
	_ = cf.Place(t)
	d, ok := obs.DecisionFor(ring.Events(), 7)
	fmt.Printf("ok=%v path=%q replicas=%d (tenant still admitted: %v)\n",
		ok, d.Path, len(d.Replicas), func() bool { _, e := cf.Placement().Tenant(7); return e }())
}
