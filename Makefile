# CubeFit build and experiment targets. Everything is plain `go` underneath;
# the targets exist for discoverability.

GO ?= go

.PHONY: all build vet test test-short race bench cover experiments figure5 figure6 table1 theorem2 fmt

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector run; mirrors the CI gate and exercises the concurrent
# controller paths (internal/api) and metrics hot paths.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

cover:
	$(GO) test -short -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Paper experiments (see EXPERIMENTS.md for expected shapes).
experiments: figure5 figure6 theorem2

figure5:
	$(GO) run ./cmd/cubefit-cluster

figure6:
	$(GO) run ./cmd/cubefit-sim

table1:
	$(GO) run ./cmd/cubefit-sim -table1

theorem2:
	$(GO) run ./cmd/cubefit-ratio

fmt:
	gofmt -w .
