# CubeFit build and experiment targets. Everything is plain `go` underneath;
# the targets exist for discoverability.

GO ?= go

.PHONY: all build vet vet-build lint lint-json test test-short race bench bench-compare loadtest loadtest-compare loadtest-sharded loadtest-trace loadtest-health healthcheck profile cover experiments figure5 figure6 table1 theorem2 fmt

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static-analysis package groups. `make lint` fans the cubefit-vet run out
# one group at a time — mirroring the CI lint matrix — so a finding names
# its group and a developer can rerun just the group they touched
# (`make lint-algorithms`). The groups partition the module: every package
# belongs to exactly one.
LINT_GROUPS := algorithms runtime sim tools
LINT_algorithms := ./internal/core/... ./internal/packing/... ./internal/baseline/... ./internal/offline/... ./internal/opt/... ./internal/rebalance/... ./internal/rfi/... ./internal/ratio/...
LINT_runtime := ./internal/api/... ./internal/obs/... ./internal/recovery/... ./internal/metrics/... ./internal/telemetry/... ./internal/clock/... ./internal/rng/...
LINT_sim := ./internal/sim/... ./internal/eventsim/... ./internal/cluster/... ./internal/workload/... ./internal/trace/... ./internal/tpch/... ./internal/failure/... ./internal/costs/... ./internal/headroom/... ./internal/stats/... ./internal/report/...
LINT_tools := . ./cmd/... ./internal/analysis/...

# One shared binary for every lint target: building it once (instead of
# `go run` per group) lets CI cache the compile between the lint and race
# jobs and keeps the matrix steps cheap.
vet-build:
	$(GO) build -o bin/cubefit-vet ./cmd/cubefit-vet

# Project-specific static analysis (see README.md "Static analysis"):
# cubefit-vet enforces the numeric, determinism, event-pool, fail-closed
# I/O, locking, and allocation invariants; the gofmt check keeps the tree
# formatting-clean. Both are blocking CI gates.
lint: $(addprefix lint-,$(LINT_GROUPS))
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

lint-%: vet-build
	./bin/cubefit-vet $(LINT_$*)

# Machine-readable lint report (vet.json): the full-tree findings plus
# per-analyzer counts, in the -json schema documented in API.md. CI
# uploads it as an artifact; the exit code still gates (non-zero on any
# finding), so `|| true` is deliberately absent.
lint-json: vet-build
	./bin/cubefit-vet -json ./... > vet.json

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector run; mirrors the CI gate and exercises the concurrent
# controller paths (internal/api) and metrics hot paths.
race:
	$(GO) test -race ./...

# Benchmarks with a machine-readable report: the raw `go test -bench`
# text lands in bench.out and cmd/cubefit-bench converts it to
# BENCH_pr10.json for CI archiving and cross-commit diffing. BENCHTIME=1x
# keeps the default run fast; use BENCHTIME=1s (or more) for stable
# numbers.
BENCHTIME ?= 1x
bench:
	$(GO) test -bench=. -benchmem -run '^$$' -benchtime=$(BENCHTIME) . | tee bench.out
	$(GO) run ./cmd/cubefit-bench -out BENCH_pr10.json bench.out

# Diff the fresh benchmark report against the committed previous-PR
# baseline. Exit code 2 (and a REGRESSION marker) when any ns/op, B/op,
# or allocs/op grew by more than BENCH_THRESHOLD; tune the tolerance for
# noisy machines with e.g. `make bench-compare BENCH_THRESHOLD=0.50`.
BENCH_THRESHOLD ?= 0.20
bench-compare: bench
	$(GO) run ./cmd/cubefit-bench -compare BENCH_pr5.json BENCH_pr10.json -threshold $(BENCH_THRESHOLD)

# Closed-loop admission load harness: single vs batched admission over
# loopback HTTP, per-tenant throughput and P50/P99 latency. LOAD_OPS
# bounds the run for CI smoke; LOAD_MINSPEEDUP fails (exit 2) when the
# batch path is not at least that many times faster per admitted tenant —
# conservative because CI runners are slow, shared, and often single-core
# (the batch endpoint's measured advantage grows with cores and ops).
LOAD_OPS ?= 10000
LOAD_MINSPEEDUP ?= 3
LOAD_SEGMENTS ?= 4
loadtest:
	$(GO) run ./cmd/cubefit-load -ops $(LOAD_OPS) -minspeedup $(LOAD_MINSPEEDUP) -o LOAD_pr10.json

# Diff the fresh load report against the committed baseline: per-tenant
# ns/op regressions beyond the threshold fail like bench regressions.
# This is a blocking CI gate (the loadtest job): the -minspeedup floor
# inside `make loadtest` plus this regression diff together pin the
# admission fast path's end-to-end win.
loadtest-compare: loadtest
	$(GO) run ./cmd/cubefit-bench -compare LOAD_baseline.json LOAD_pr10.json -threshold $(BENCH_THRESHOLD)

# Same harness against a sharded WAL on a temp file: group commits fsync
# in parallel across LOAD_SEGMENTS segment files. Smoke for the
# `-wal-segments` path end to end (admission + recovery-compatible log).
loadtest-sharded:
	$(GO) run ./cmd/cubefit-load -ops $(LOAD_OPS) -wal /tmp/cubefit-load-wal.jsonl -wal-segments $(LOAD_SEGMENTS) -o LOAD_sharded.json

# Span-layer overhead gate: the same harness with admission tracing off
# (baseline) and on, diffed. The acceptance bar is ≥95% of untraced
# batch throughput (the span cycle microbenchmarks at ~0.7µs against a
# ~15µs admission); the default threshold adds headroom for the ±10%
# process-to-process scheduler noise that two back-to-back runs see on
# small or shared machines — tighten with TRACE_OVERHEAD=0.05 on a quiet
# multi-core box. The tracing-off report carries no stage columns, so
# the diff compares throughput only.
TRACE_OVERHEAD ?= 0.10
TRACE_OPS ?= 30000
loadtest-trace:
	$(GO) run ./cmd/cubefit-load -ops $(TRACE_OPS) -trace=false -o LOAD_notrace.json
	$(GO) run ./cmd/cubefit-load -ops $(TRACE_OPS) -o LOAD_trace.json
	$(GO) run ./cmd/cubefit-bench -compare LOAD_notrace.json LOAD_trace.json -threshold $(TRACE_OVERHEAD)

# Health sampler overhead: the load harness with the telemetry loop off
# (baseline) and on, diffed like the tracing gate. The sampler scrapes
# the registry once per -health-interval off the admission path, so the
# expected cost is noise; the threshold matches the tracing gate's
# shared-runner headroom.
HEALTH_OVERHEAD ?= 0.10
loadtest-health:
	$(GO) run ./cmd/cubefit-load -ops $(TRACE_OPS) -health=false -o LOAD_nohealth.json
	$(GO) run ./cmd/cubefit-load -ops $(TRACE_OPS) -o LOAD_health.json
	$(GO) run ./cmd/cubefit-bench -compare LOAD_nohealth.json LOAD_health.json -threshold $(HEALTH_OVERHEAD)

# End-to-end health smoke: boot a real server with a fast sampling
# interval and a health log, probe liveness/readiness, admit a tenant,
# read the timeline, shut down gracefully (SIGTERM → readiness-aware
# drain), then replay the recorded log offline — `cubefit-inspect
# health` exits non-zero if the replayed verdict timeline diverges from
# the live one.
HEALTH_ADDR ?= 127.0.0.1:18080
healthcheck:
	$(GO) build -o bin/cubefit-server ./cmd/cubefit-server
	$(GO) build -o bin/cubefit-inspect ./cmd/cubefit-inspect
	@set -e; \
	./bin/cubefit-server -addr $(HEALTH_ADDR) -health-interval 200ms -health-log HEALTH_smoke.jsonl & \
	pid=$$!; trap 'kill $$pid 2>/dev/null || true' EXIT; \
	sleep 1; \
	curl -fsS http://$(HEALTH_ADDR)/healthz; echo; \
	curl -fsS http://$(HEALTH_ADDR)/readyz; echo; \
	curl -fsS -X POST -H 'Content-Type: application/json' -d '{"id":1,"load":0.4}' http://$(HEALTH_ADDR)/v1/tenants >/dev/null; \
	curl -fsS 'http://$(HEALTH_ADDR)/debug/health' >/dev/null; \
	curl -fsS 'http://$(HEALTH_ADDR)/debug/timeline?series=cubefit_wal_sticky_error&window=30s' >/dev/null; \
	sleep 1; \
	kill -TERM $$pid; wait $$pid; \
	./bin/cubefit-inspect health -log HEALTH_smoke.jsonl

# CPU and allocation profiles of a representative consolidation run;
# inspect with `go tool pprof cpu.prof` / `go tool pprof mem.prof`.
profile:
	$(GO) run ./cmd/cubefit-sim -quick -cpuprofile cpu.prof -memprofile mem.prof
	@echo "profiles written: cpu.prof mem.prof (go tool pprof <file>)"

cover:
	$(GO) test -short -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Paper experiments (see EXPERIMENTS.md for expected shapes).
experiments: figure5 figure6 theorem2

figure5:
	$(GO) run ./cmd/cubefit-cluster

figure6:
	$(GO) run ./cmd/cubefit-sim

table1:
	$(GO) run ./cmd/cubefit-sim -table1

theorem2:
	$(GO) run ./cmd/cubefit-ratio

fmt:
	gofmt -w .
