# CubeFit build and experiment targets. Everything is plain `go` underneath;
# the targets exist for discoverability.

GO ?= go

.PHONY: all build vet lint test test-short race bench cover experiments figure5 figure6 table1 theorem2 fmt

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis (see README.md "Static analysis"):
# cubefit-vet enforces the numeric, determinism, and locking invariants;
# the gofmt check keeps the tree formatting-clean. Both are blocking CI
# gates.
lint:
	$(GO) build -o /dev/null ./cmd/cubefit-vet
	$(GO) run ./cmd/cubefit-vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector run; mirrors the CI gate and exercises the concurrent
# controller paths (internal/api) and metrics hot paths.
race:
	$(GO) test -race ./...

# Benchmarks with a machine-readable report: the raw `go test -bench`
# text lands in bench.out and cmd/cubefit-bench converts it to
# BENCH_pr4.json for CI archiving and cross-commit diffing. BENCHTIME=1x
# keeps the default run fast; use BENCHTIME=1s (or more) for stable
# numbers.
BENCHTIME ?= 1x
bench:
	$(GO) test -bench=. -benchmem -run '^$$' -benchtime=$(BENCHTIME) . | tee bench.out
	$(GO) run ./cmd/cubefit-bench -out BENCH_pr4.json bench.out

cover:
	$(GO) test -short -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Paper experiments (see EXPERIMENTS.md for expected shapes).
experiments: figure5 figure6 theorem2

figure5:
	$(GO) run ./cmd/cubefit-cluster

figure6:
	$(GO) run ./cmd/cubefit-sim

table1:
	$(GO) run ./cmd/cubefit-sim -table1

theorem2:
	$(GO) run ./cmd/cubefit-ratio

fmt:
	gofmt -w .
