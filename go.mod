module cubefit

go 1.22
