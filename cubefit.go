// Package cubefit is a robust multi-tenant server consolidation library,
// implementing the CubeFit algorithm of Mate, Daudjee and Kamali
// ("Robust Multi-Tenant Server Consolidation in the Cloud for Data
// Analytics Workloads", ICDCS 2017).
//
// Tenants arrive online with a normalized load in (0, 1]; the consolidator
// creates γ replicas per tenant and assigns them to unit-capacity servers
// such that no server ever overloads — even if any γ−1 servers fail
// simultaneously and their load fails over to the survivors. CubeFit
// achieves this robustness while using close to the minimal number of
// servers (competitive ratio ≈ 1.59 for γ=2, ≈ 1.625 for γ=3).
//
// Quick start:
//
//	c, err := cubefit.New(cubefit.WithReplication(2), cubefit.WithClasses(10))
//	if err != nil { ... }
//	err = c.Place(cubefit.Tenant{ID: 1, Load: 0.3})
//	hosts := c.Placement().TenantHosts(1) // the two servers hosting tenant 1
//
// The package also exposes the RFI baseline from the paper's evaluation,
// worst-case failure planning, and a calibrated cluster latency simulator
// for failover drills.
package cubefit

import (
	"fmt"

	"cubefit/internal/cluster"
	"cubefit/internal/core"
	"cubefit/internal/failure"
	"cubefit/internal/offline"
	"cubefit/internal/packing"
	"cubefit/internal/rebalance"
	"cubefit/internal/rfi"
	"cubefit/internal/workload"
)

// Core model types, re-exported from the internal packing model.
type (
	// Tenant is one arriving client application with a normalized load in
	// (0, 1]. Clients optionally carries the concurrent client count for
	// latency simulation.
	Tenant = packing.Tenant
	// TenantID identifies a tenant.
	TenantID = packing.TenantID
	// Replica is one of the γ copies of a tenant.
	Replica = packing.Replica
	// Placement is an assignment of tenant replicas to servers.
	Placement = packing.Placement
	// Server is one unit-capacity machine in a placement.
	Server = packing.Server
	// Algorithm is any online consolidation algorithm.
	Algorithm = packing.Algorithm
	// LoadModel maps concurrent client counts to normalized loads.
	LoadModel = workload.LoadModel
	// FailurePlan is a set of servers to fail with the predicted worst
	// overload.
	FailurePlan = failure.Plan
	// LatencyResult is the outcome of a simulated latency measurement.
	LatencyResult = cluster.Result
	// PlacementStats counts CubeFit placement paths.
	PlacementStats = core.Stats
)

// MaxClientsPerServer is the calibrated per-server client capacity (52 in
// the paper's testbed).
const MaxClientsPerServer = workload.MaxClientsPerServer

// DefaultLoadModel returns the calibrated linear load model
// (load = δ·clients + β with 52 clients saturating a server).
func DefaultLoadModel() LoadModel { return workload.DefaultLoadModel() }

// Option configures New.
type Option interface {
	apply(*core.Config)
}

type optionFunc func(*core.Config)

func (f optionFunc) apply(c *core.Config) { f(c) }

// WithReplication sets the number of replicas per tenant γ (default 2).
// The placement tolerates any γ−1 simultaneous server failures.
func WithReplication(gamma int) Option {
	return optionFunc(func(c *core.Config) { c.Gamma = gamma })
}

// WithClasses sets the number of replica size classes K (default 10; the
// paper suggests 10 for data centers with thousands of servers and 5 for
// small clusters).
func WithClasses(k int) Option {
	return optionFunc(func(c *core.Config) { c.K = k })
}

// WithMultiReplicaTinyPolicy switches the smallest-class handling to the
// paper's theoretical multi-replica construction instead of the default
// empirical class-(K−1) placement.
func WithMultiReplicaTinyPolicy() Option {
	return optionFunc(func(c *core.Config) { c.TinyPolicy = core.TinyMultiReplica })
}

// WithoutFirstStage disables the mature-bin Best Fit stage (ablation).
func WithoutFirstStage() Option {
	return optionFunc(func(c *core.Config) { c.DisableFirstStage = true })
}

// WithMinTenantLoad declares a lower bound on future tenant loads,
// letting the consolidator retire exhausted bins early. The placement is
// unchanged as long as the bound holds.
func WithMinTenantLoad(load float64) Option {
	return optionFunc(func(c *core.Config) {
		if load > 0 {
			c.PruneSlack = load * 0.99
		}
	})
}

// Consolidator is the CubeFit online consolidation engine. It is not safe
// for concurrent use.
type Consolidator struct {
	cf *core.CubeFit
}

// New creates a CubeFit consolidator.
func New(opts ...Option) (*Consolidator, error) {
	cfg := core.DefaultConfig()
	for _, o := range opts {
		o.apply(&cfg)
	}
	if cfg.PruneSlack > 0 {
		cfg.PruneSlack /= float64(cfg.Gamma) // per-replica bound
	}
	cf, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Consolidator{cf: cf}, nil
}

// Name identifies the algorithm and configuration.
func (c *Consolidator) Name() string { return c.cf.Name() }

// Place admits one tenant, assigning its γ replicas to γ distinct servers
// while preserving the failover invariant.
func (c *Consolidator) Place(t Tenant) error { return c.cf.Place(t) }

// Remove evicts a tenant, freeing its capacity for future arrivals
// (an extension beyond the paper's arrival-only model).
func (c *Consolidator) Remove(id TenantID) error { return c.cf.Remove(id) }

// Placement exposes the placement built so far (read-only).
func (c *Consolidator) Placement() *Placement { return c.cf.Placement() }

// Stats reports which placement paths tenants took.
func (c *Consolidator) Stats() PlacementStats { return c.cf.Stats() }

// Validate re-checks the full robustness invariant; it returns nil for
// every placement the consolidator produces and exists for audits.
func (c *Consolidator) Validate() error { return c.cf.Placement().Validate() }

var _ Algorithm = (*Consolidator)(nil)

// NewRFI creates the paper's baseline algorithm (Schaffner et al.'s RTP
// placement, reference [12]) with the given replication factor. mu ≤ 0
// selects the recommended interleaving parameter 0.85. RFI tolerates only
// a single server failure regardless of gamma.
func NewRFI(gamma int, mu float64) (Algorithm, error) {
	if mu <= 0 {
		mu = rfi.DefaultMu
	}
	return rfi.New(rfi.Config{Gamma: gamma, Mu: mu})
}

// WorstCaseFailures selects the f servers whose simultaneous failure
// redirects the most clients onto a single surviving server (the paper's
// worst-overload drill).
func WorstCaseFailures(p *Placement, f int) (FailurePlan, error) {
	return failure.WorstCase(p, f)
}

// UniformWorkload returns a tenant source whose client counts are uniform
// on [1, maxClients] under the default load model, as in the paper's first
// system experiment (maxClients=15).
func UniformWorkload(maxClients int, seed uint64) (TenantSource, error) {
	d, err := workload.NewUniform(1, maxClients)
	if err != nil {
		return nil, err
	}
	return workload.NewClientSource(workload.DefaultLoadModel(), d, seed)
}

// ZipfWorkload returns a tenant source whose client counts follow a
// zipfian distribution with the given exponent over [1, 52], as in the
// paper's second system experiment (exponent 3).
func ZipfWorkload(exponent float64, seed uint64) (TenantSource, error) {
	d, err := workload.NewZipf(exponent, workload.MaxClientsPerServer)
	if err != nil {
		return nil, err
	}
	return workload.NewClientSource(workload.DefaultLoadModel(), d, seed)
}

// TenantSource produces an online sequence of tenants.
type TenantSource = workload.Source

// TakeTenants drains n tenants from a source.
func TakeTenants(src TenantSource, n int) []Tenant { return workload.Take(src, n) }

// LatencyConfig parameterizes SimulateLatency.
type LatencyConfig struct {
	// SLA is the 99th-percentile response bound in seconds (default 5).
	SLA float64
	// Warmup and Measure are the simulated warm-up and measurement windows
	// in seconds (defaults 60 and 120).
	Warmup, Measure float64
	// Seed drives the stochastic workload (default 1).
	Seed uint64
}

// SimulateLatency runs the calibrated cluster latency simulation for the
// placement after applying the failure plan (use an empty plan for the
// healthy baseline) and reports tail latency over the measurement window.
func SimulateLatency(p *Placement, plan FailurePlan, cfg LatencyConfig) (LatencyResult, error) {
	assign, err := failure.Apply(p, plan)
	if err != nil {
		return LatencyResult{}, err
	}
	ccfg := cluster.DefaultConfig()
	if cfg.SLA > 0 {
		ccfg.SLA = cfg.SLA
	}
	if cfg.Warmup > 0 {
		ccfg.Warmup = cfg.Warmup
	}
	if cfg.Measure > 0 {
		ccfg.Measure = cfg.Measure
	}
	if cfg.Seed != 0 {
		ccfg.Seed = cfg.Seed
	}
	res, err := cluster.Run(p, assign, ccfg)
	if err != nil {
		return LatencyResult{}, fmt.Errorf("cubefit: latency simulation: %w", err)
	}
	return res, nil
}

// MigrationPlan describes the replica moves of a Repack.
type MigrationPlan = rebalance.Plan

// ReplicaMove is one relocation within a MigrationPlan.
type ReplicaMove = rebalance.Move

// Repack computes a fresh offline placement for the current tenant
// population together with the migration plan that reaches it — the
// periodic maintenance pass that reclaims fragmentation after tenant
// churn (an extension beyond the paper's arrival-only model). The input
// placement is not modified; the returned placement is robust.
func Repack(p *Placement) (*Placement, MigrationPlan, error) {
	return rebalance.Repack(p)
}

// PlaceOffline places a fully known tenant set with First Fit Decreasing
// under the same robustness constraints — the paper's "ideal scenario"
// with full lookahead, useful as a batch-placement mode and as a
// practical stand-in for OPT.
func PlaceOffline(gamma int, tenants []Tenant) (*Placement, error) {
	return offline.PlaceAll(gamma, tenants)
}
